//! Degenerate process layouts: `Pz = 1` (no z dimension — the sparse
//! allreduce and z-exchange machinery must no-op cleanly), `Px = Py = 1`
//! (no 2D grid — every level is local, only z-communication remains),
//! and the fully degenerate single rank.
//!
//! Every algorithm variant runs each layout on the backend selected by
//! `SPTRSV_TEST_BACKEND` (CI's backend matrix), so the no-op paths are
//! exercised on both the simulator and the real threaded transport.

mod common;

use simgrid::Category;
use sptrsv_repro::prelude::*;
use std::sync::Arc;

const NRHS: usize = 2;

fn fixture(pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), NRHS);
    let want = f.solve(&b, NRHS);
    (f, b, want)
}

fn solve(alg: Algorithm, arch: Arch, (px, py, pz): (usize, usize, usize)) -> SolveOutcome {
    let (f, b, want) = fixture(pz);
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: common::backend(),
        executor: common::executor(),
    };
    let out = solve_distributed(&f, &b, &cfg);
    let diff = sparse::max_abs_diff(&out.x, &want);
    assert!(
        diff < 1e-9,
        "{alg:?}/{arch:?} on {px}x{py}x{pz}: diff vs reference {diff}"
    );
    out
}

fn bytes(out: &SolveOutcome, cat: Category) -> u64 {
    out.stats.iter().map(|s| s.bytes_sent[cat as usize]).sum()
}

const CPU_ALGS: [Algorithm; 4] = [
    Algorithm::New3d,
    Algorithm::New3dFlat,
    Algorithm::New3dNaiveAllreduce,
    Algorithm::Baseline3d,
];

/// `Pz = 1`: the z-communicator is a singleton, so the allreduce /
/// z-exchange phases must send nothing at all.
#[test]
fn pz1_sends_no_z_traffic() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (2, 2, 1));
        assert_eq!(
            bytes(&out, Category::ZComm),
            0,
            "{alg:?}: Pz=1 must not produce z-communication"
        );
    }
    let out = solve(Algorithm::New3d, Arch::Gpu, (2, 2, 1));
    assert_eq!(bytes(&out, Category::ZComm), 0);
}

/// `Px = Py = 1`: each 2D grid is a single rank, so the level-by-level
/// x/y pipeline has nobody to talk to; only z-reduction traffic remains.
#[test]
fn px1_py1_sends_no_xy_traffic() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (1, 1, 4));
        assert_eq!(
            bytes(&out, Category::XyComm),
            0,
            "{alg:?}: Px=Py=1 must not produce x/y-communication"
        );
    }
    let out = solve(Algorithm::New3d, Arch::Gpu, (1, 1, 4));
    assert_eq!(bytes(&out, Category::XyComm), 0);
}

/// The fully degenerate layout: one rank, both comm dimensions trivial.
/// Nothing may be sent anywhere, on any algorithm.
#[test]
fn single_rank_sends_nothing() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (1, 1, 1));
        let total: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent.iter().sum::<u64>())
            .sum();
        assert_eq!(total, 0, "{alg:?}: a single rank must not send messages");
    }
    solve(Algorithm::New3d, Arch::Gpu, (1, 1, 1));
}
