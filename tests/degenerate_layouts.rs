//! Degenerate process layouts: `Pz = 1` (no z dimension — the sparse
//! allreduce and z-exchange machinery must no-op cleanly), `Px = Py = 1`
//! (no 2D grid — every level is local, only z-communication remains),
//! and the fully degenerate single rank.
//!
//! Every algorithm variant runs each layout on the backend selected by
//! `SPTRSV_TEST_BACKEND` (CI's backend matrix), so the no-op paths are
//! exercised on both the simulator and the real threaded transport.

mod common;

use simgrid::Category;
use sptrsv_repro::prelude::*;
use sptrsv_repro::sptrsv::ServiceStats;
use std::sync::Arc;
use std::time::Duration;

const NRHS: usize = 2;

fn fixture(pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), NRHS);
    let want = f.solve(&b, NRHS);
    (f, b, want)
}

fn solve(alg: Algorithm, arch: Arch, (px, py, pz): (usize, usize, usize)) -> SolveOutcome {
    let (f, b, want) = fixture(pz);
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: common::backend(),
        executor: common::executor(),
    };
    let out = solve_distributed(&f, &b, &cfg);
    let diff = sparse::max_abs_diff(&out.x, &want);
    assert!(
        diff < 1e-9,
        "{alg:?}/{arch:?} on {px}x{py}x{pz}: diff vs reference {diff}"
    );
    out
}

fn bytes(out: &SolveOutcome, cat: Category) -> u64 {
    out.stats.iter().map(|s| s.bytes_sent[cat as usize]).sum()
}

const CPU_ALGS: [Algorithm; 4] = [
    Algorithm::New3d,
    Algorithm::New3dFlat,
    Algorithm::New3dNaiveAllreduce,
    Algorithm::Baseline3d,
];

/// `Pz = 1`: the z-communicator is a singleton, so the allreduce /
/// z-exchange phases must send nothing at all.
#[test]
fn pz1_sends_no_z_traffic() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (2, 2, 1));
        assert_eq!(
            bytes(&out, Category::ZComm),
            0,
            "{alg:?}: Pz=1 must not produce z-communication"
        );
    }
    let out = solve(Algorithm::New3d, Arch::Gpu, (2, 2, 1));
    assert_eq!(bytes(&out, Category::ZComm), 0);
}

/// `Px = Py = 1`: each 2D grid is a single rank, so the level-by-level
/// x/y pipeline has nobody to talk to; only z-reduction traffic remains.
#[test]
fn px1_py1_sends_no_xy_traffic() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (1, 1, 4));
        assert_eq!(
            bytes(&out, Category::XyComm),
            0,
            "{alg:?}: Px=Py=1 must not produce x/y-communication"
        );
    }
    let out = solve(Algorithm::New3d, Arch::Gpu, (1, 1, 4));
    assert_eq!(bytes(&out, Category::XyComm), 0);
}

/// One coalesced `nrhs = 3` batch (a width-2 and a width-1 request)
/// through a [`SolverService`] on a degenerate layout.  Returns the
/// service's accumulated communication stats after asserting both demuxed
/// results are bit-identical to their standalone solves.
fn serve_batched(alg: Algorithm, (px, py, pz): (usize, usize, usize)) -> ServiceStats {
    let (f, b2, _) = fixture(pz);
    let n = b2.len() / NRHS;
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs: 1,
        algorithm: alg,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: common::backend(),
        executor: common::executor(),
    };
    let solver = Solver3d::new(f, cfg);
    let b = gen::standard_rhs(n, 3);
    let want_pair = solver.solve(&b[..2 * n], 2).x;
    let want_single = solver.solve(&b[2 * n..], 1).x;

    let svc = SolverService::start(
        solver,
        ServiceConfig {
            // max_batch = total queued width: exactly one width-triggered
            // nrhs = 3 flush, no reliance on the wait window.
            batch: BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_secs(10),
            },
            queue_capacity: 8,
            max_request_width: 2,
            on_full: QueueFullPolicy::Block,
        },
    );
    let t_pair = svc.submit(&b[..2 * n], 2).unwrap();
    let t_single = svc.submit(&b[2 * n..], 1).unwrap();
    assert_eq!(
        t_pair.wait(),
        want_pair,
        "{alg:?} on {px}x{py}x{pz}: batched width-2 request not bit-identical"
    );
    assert_eq!(
        t_single.wait(),
        want_single,
        "{alg:?} on {px}x{py}x{pz}: batched width-1 request not bit-identical"
    );
    let stats = svc.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.batches, 1, "{alg:?}: expected one coalesced batch");
    svc.shutdown();
    stats
}

/// Batched serving with `Pz = 1`: a coalesced `nrhs > 1` solve must keep
/// the no-z-traffic guarantee of the standalone degenerate layout.
#[test]
fn batched_pz1_sends_no_z_traffic() {
    for alg in CPU_ALGS {
        let stats = serve_batched(alg, (2, 2, 1));
        assert_eq!(
            stats.bytes_sent[Category::ZComm as usize],
            0,
            "{alg:?}: batched Pz=1 serving must not produce z-communication"
        );
    }
}

/// Batched serving on the fully degenerate single rank: a coalesced
/// `nrhs > 1` solve must not send a single message.
#[test]
fn batched_single_rank_sends_nothing() {
    for alg in CPU_ALGS {
        let stats = serve_batched(alg, (1, 1, 1));
        assert_eq!(
            stats.msgs_sent.iter().sum::<u64>(),
            0,
            "{alg:?}: batched single-rank serving must not send messages"
        );
    }
}

/// The fully degenerate layout: one rank, both comm dimensions trivial.
/// Nothing may be sent anywhere, on any algorithm.
#[test]
fn single_rank_sends_nothing() {
    for alg in CPU_ALGS {
        let out = solve(alg, Arch::Cpu, (1, 1, 1));
        let total: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent.iter().sum::<u64>())
            .sum();
        assert_eq!(total, 0, "{alg:?}: a single rank must not send messages");
    }
    solve(Algorithm::New3d, Arch::Gpu, (1, 1, 1));
}
