//! Cross-crate integration tests: every distributed algorithm/architecture
//! combination must reproduce the sequential reference solution exactly
//! (same factors, same arithmetic), on every Table 1 analog matrix.

use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn reference(a: &CsrMatrix, pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), 2);
    let x = f.solve(&b, 2);
    (f, b, x)
}

fn run(
    f: &Arc<Factorized>,
    b: &[f64],
    alg: Algorithm,
    arch: Arch,
    (px, py, pz): (usize, usize, usize),
    chaos: u64,
) -> SolveOutcome {
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs: 2,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: chaos,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    solve_distributed(f, b, &cfg)
}

#[test]
fn all_algorithms_agree_on_every_matrix() {
    for m in gen::table1_suite(gen::Scale::Tiny) {
        let (f, b, want) = reference(&m.matrix, 4);
        for alg in [
            Algorithm::New3d,
            Algorithm::New3dFlat,
            Algorithm::New3dNaiveAllreduce,
            Algorithm::Baseline3d,
        ] {
            let out = run(&f, &b, alg, Arch::Cpu, (2, 2, 4), 0);
            let diff = sparse::max_abs_diff(&out.x, &want);
            assert!(diff < 1e-10, "{} with {alg:?}: diff {diff}", m.name);
            assert!(
                out.replication_disagreement < 1e-10,
                "{} with {alg:?}: replicas disagree",
                m.name
            );
        }
        let out = run(&f, &b, Algorithm::New3d, Arch::Gpu, (2, 1, 4), 0);
        assert!(
            sparse::max_abs_diff(&out.x, &want) < 1e-10,
            "{} on GPU path",
            m.name
        );
    }
}

#[test]
fn grid_shape_sweep_new3d() {
    let a = gen::poisson2d_9pt(14, 14);
    let (f, b, want) = reference(&a, 8);
    for (px, py, pz) in [
        (1, 1, 1),
        (3, 1, 1),
        (1, 3, 1),
        (2, 2, 2),
        (1, 1, 8),
        (2, 3, 4),
        (4, 2, 2),
        (1, 2, 8),
    ] {
        let out = run(&f, &b, Algorithm::New3d, Arch::Cpu, (px, py, pz), 0);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(diff < 1e-10, "shape {px}x{py}x{pz}: diff {diff}");
    }
}

#[test]
fn grid_shape_sweep_baseline() {
    let a = gen::kkt3d(3, 3, 4);
    let (f, b, want) = reference(&a, 8);
    for (px, py, pz) in [(2, 2, 2), (1, 1, 8), (3, 2, 4), (2, 1, 8)] {
        let out = run(&f, &b, Algorithm::Baseline3d, Arch::Cpu, (px, py, pz), 0);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(diff < 1e-10, "baseline {px}x{py}x{pz}: diff {diff}");
    }
}

#[test]
fn gpu_shapes_match_reference() {
    let a = gen::fusion_band(250, 5, 25, 3);
    let (f, b, want) = reference(&a, 4);
    for (px, py, pz) in [(1, 1, 4), (4, 1, 1), (2, 1, 4), (2, 2, 2), (1, 4, 1)] {
        let out = run(&f, &b, Algorithm::New3d, Arch::Gpu, (px, py, pz), 0);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(diff < 1e-10, "gpu {px}x{py}x{pz}: diff {diff}");
    }
}

// NOTE: the former `chaos_message_ordering_does_not_change_results` test
// moved into `tests/chaos_conformance.rs`, which sweeps all four solvers
// over the full fault-profile × seed matrix with richer failure output.

/// The residual of the distributed solution against the *original* matrix
/// must be tiny for every matrix family (not just solution agreement).
#[test]
fn residuals_are_small() {
    for m in gen::table1_suite(gen::Scale::Tiny) {
        let f = Arc::new(factorize(&m.matrix, 2, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(m.matrix.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let res = sparse::rel_residual_inf(&m.matrix, &out.x, &b, 1);
        assert!(res < 1e-10, "{}: residual {res}", m.name);
    }
}

/// Phase timings must be self-consistent: nonnegative, and the total solve
/// time of each rank at least the busy parts.
#[test]
fn phase_times_are_consistent() {
    let a = gen::poisson2d_9pt(12, 12);
    let (f, b, _) = reference(&a, 4);
    let out = run(&f, &b, Algorithm::New3d, Arch::Cpu, (2, 2, 4), 0);
    assert!(out.makespan > 0.0);
    for p in &out.phases {
        assert!(p.l_wall >= 0.0 && p.u_wall >= 0.0 && p.z_wall >= 0.0);
        assert!(p.l_busy <= p.l_wall + 1e-12);
        assert!(p.u_busy <= p.u_wall + 1e-12);
        assert!(p.total + 1e-12 >= p.l_wall + p.z_wall + p.u_wall - 1e-12);
    }
}

/// More right-hand sides must not change the solution of the first one.
#[test]
fn multi_rhs_prefix_consistency() {
    let a = gen::poisson2d_9pt(10, 10);
    let n = a.nrows();
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
    let b4 = gen::standard_rhs(n, 4);
    let cfg = |nrhs| SolverConfig {
        px: 2,
        py: 1,
        pz: 2,
        nrhs,
        algorithm: Algorithm::New3d,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let out4 = solve_distributed(&f, &b4, &cfg(4));
    let out1 = solve_distributed(&f, &b4[..n], &cfg(1));
    assert!(sparse::max_abs_diff(&out4.x[..n], &out1.x) < 1e-12);
}

/// The plan-reusing [`Solver3d`] must give identical results to the
/// plan-per-call entry point, including with a different RHS count than it
/// was planned for.
#[test]
fn planned_solver_matches_unplanned() {
    use sptrsv_repro::prelude::Solver3d;
    let a = gen::poisson2d_9pt(11, 13);
    let (f, b, want) = reference(&a, 4);
    let cfg = SolverConfig {
        px: 2,
        py: 2,
        pz: 4,
        nrhs: 2,
        algorithm: Algorithm::New3d,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);
    let out = solver.solve(&b, 2);
    assert!(sparse::max_abs_diff(&out.x, &want) < 1e-12);
    // Re-solve with 1 RHS against the prefix.
    let n = a.nrows();
    let out1 = solver.solve(&b[..n], 1);
    assert!(sparse::max_abs_diff(&out1.x, &want[..n]) < 1e-12);
}
