//! Live metrics endpoint conformance: a [`SolverService`] scraped over
//! plain HTTP returns the registry in OpenMetrics text — grammatically
//! valid (TYPE lines, cumulative buckets, `+Inf`, `_sum`/`_count`,
//! terminal `# EOF`), carrying the `service_` series, with percentiles
//! computable from the four latency-decomposition histograms.
//!
//! This is the same surface `sptrsv3d --serve --metrics-listen` exposes
//! and the CI smoke job curls.

use lufactor::factorize;
use ordering::SymbolicOptions;
use simgrid::MachineModel;
use sparse::gen;
use sptrsv_repro::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

fn start_service() -> (SolverService, Vec<f64>, usize) {
    let a = gen::poisson2d_9pt(12, 12);
    let n = a.nrows();
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
    let cfg = SolverConfig {
        px: 2,
        py: 2,
        pz: 2,
        nrhs: 1,
        algorithm: Algorithm::New3d,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let svc = SolverService::start(Solver3d::new(f, cfg), ServiceConfig::default());
    let b = gen::standard_rhs(n, 1);
    (svc, b, n)
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut sock = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n")
        .expect("send scrape request");
    let mut resp = String::new();
    sock.read_to_string(&mut resp)
        .expect("read scrape response");
    resp
}

/// Minimal OpenMetrics grammar check over an exposition body: every
/// sample names a `# TYPE`-declared family, histogram buckets are
/// cumulative and end at `+Inf == _count`, and the body ends in `# EOF`.
fn check_openmetrics_grammar(body: &str) {
    assert!(body.ends_with("# EOF\n"), "missing terminal # EOF");
    let mut types: HashMap<&str, &str> = HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap(), it.next().unwrap());
            assert!(
                matches!(kind, "counter" | "histogram"),
                "unexpected TYPE {kind} for {name}"
            );
            types.insert(name, kind);
        }
    }
    assert!(!types.is_empty(), "no TYPE declarations");
    let family_of = |sample: &str| -> String {
        let base = sample.split('{').next().unwrap();
        for suffix in ["_total", "_bucket", "_sum", "_count"] {
            if let Some(f) = base.strip_suffix(suffix) {
                if types.contains_key(f) {
                    return f.to_string();
                }
            }
        }
        panic!("sample {sample} does not belong to a declared family");
    };
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.split_whitespace().next().unwrap();
        assert!(
            !name.split('{').next().unwrap().contains('.'),
            "metric name {name} not sanitized for exposition"
        );
        let _ = family_of(name);
    }
}

/// Parse one histogram family out of the body: ascending `(le, cum)`
/// pairs (`le = +Inf` mapped to `f64::INFINITY`) plus its `_count`.
fn parse_histogram(body: &str, family: &str) -> (Vec<(f64, u64)>, u64) {
    let mut buckets = Vec::new();
    let mut count = 0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{le=\"")) {
            let (le, tail) = rest.split_once("\"}").expect("malformed bucket line");
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("numeric le")
            };
            buckets.push((
                bound,
                tail.trim().parse().expect("integer cumulative count"),
            ));
        } else if let Some(v) = line.strip_prefix(&format!("{family}_count ")) {
            count = v.trim().parse().expect("integer count");
        }
    }
    (buckets, count)
}

#[test]
fn live_scrape_is_valid_openmetrics_with_latency_histograms() {
    let (svc, b, _n) = start_service();
    // Eight requests so every latency series has observations.
    for _ in 0..8 {
        svc.solve(&b, 1).unwrap();
    }
    let server = svc
        .serve_metrics("127.0.0.1:0")
        .expect("bind on a free port");
    let resp = scrape(server.local_addr());

    let (head, body) = resp.split_once("\r\n\r\n").expect("no header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200 OK"),
        "bad status line: {head}"
    );
    assert!(
        head.contains("Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8"),
        "wrong content type: {head}"
    );
    check_openmetrics_grammar(body);

    // The service series are present.
    assert!(body.contains("service_requests_total 8"));
    assert!(body.contains("service_batches_total"));

    // The four latency-decomposition histograms: cumulative, closed by
    // +Inf == _count, and p50/p99 computable from the buckets.
    for family in [
        "service_queue_wait_seconds",
        "service_batch_form_seconds",
        "service_solve_seconds",
        "service_demux_seconds",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} histogram")),
            "{family} not declared"
        );
        let (buckets, count) = parse_histogram(body, family);
        assert!(buckets.len() > 2, "{family}: too few buckets");
        assert!(count >= 1, "{family}: never observed");
        let mut prev = 0;
        for &(_, c) in &buckets {
            assert!(c >= prev, "{family}: buckets not cumulative");
            prev = c;
        }
        assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
        assert_eq!(buckets.last().unwrap().1, count, "{family}: +Inf != count");
        // Prometheus-style percentile from the cumulative buckets.
        let quantile = |q: f64| -> f64 {
            let target = q * count as f64;
            let mut lo = 0.0;
            for &(le, c) in &buckets {
                if (c as f64) >= target {
                    return if le.is_infinite() { lo } else { le };
                }
                lo = le;
            }
            lo
        };
        let (p50, p99) = (quantile(0.5), quantile(0.99));
        assert!(
            p50.is_finite() && p99.is_finite(),
            "{family}: percentile not computable"
        );
        assert!(p99 >= p50, "{family}: p99 {p99} below p50 {p50}");
    }

    // Scrapes are repeatable on fresh connections and see new traffic.
    svc.solve(&b, 1).unwrap();
    let again = scrape(server.local_addr());
    assert!(again.contains("service_requests_total 9"));

    server.shutdown();
    svc.shutdown();
}

/// The listener tolerates rude clients: an immediately-closed connection
/// and a garbage request must not wedge the next well-formed scrape.
#[test]
fn listener_survives_malformed_clients() {
    let (svc, b, _n) = start_service();
    svc.solve(&b, 1).unwrap();
    let server = svc
        .serve_metrics("127.0.0.1:0")
        .expect("bind on a free port");
    let addr = server.local_addr();

    drop(std::net::TcpStream::connect(addr).expect("connect-and-slam"));
    {
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        sock.write_all(b"\x00\x01garbage\r\n").unwrap();
        let mut sink = String::new();
        let _ = sock.read_to_string(&mut sink); // server replies or closes
    }

    let resp = scrape(addr);
    assert!(resp.contains("service_requests_total 1"), "endpoint wedged");
    server.shutdown();
    svc.shutdown();
}
