//! Shared support for the integration test suites (not a test crate
//! itself — included via `mod common;` from the harnesses that need it).

#![allow(dead_code)]

/// Chaos seeds the conformance harness sweeps. Override with a
/// comma-separated `CHAOS_SEEDS` environment variable (the CI chaos job
/// pins a larger matrix this way).
pub fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse()
                    .unwrap_or_else(|e| panic!("CHAOS_SEEDS entry {t:?}: {e}"))
            })
            .collect(),
        Err(_) => vec![7, 42, 1234],
    }
}

/// Backend under test for suites that honor the CI backend matrix.
/// `SPTRSV_TEST_BACKEND=sim|native|proc` selects it; default is the
/// simulator.
pub fn backend() -> sptrsv_repro::sptrsv::Backend {
    match std::env::var("SPTRSV_TEST_BACKEND") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("SPTRSV_TEST_BACKEND: {e}")),
        Err(_) => Default::default(),
    }
}

/// Execution engine under test for suites that honor the CI executor
/// matrix. `SPTRSV_TEST_EXECUTOR=tree|level` selects it; default is the
/// message-driven tree walk.
pub fn executor() -> sptrsv_repro::sptrsv::ExecutorKind {
    match std::env::var("SPTRSV_TEST_EXECUTOR") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("SPTRSV_TEST_EXECUTOR: {e}")),
        Err(_) => Default::default(),
    }
}
