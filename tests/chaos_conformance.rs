//! Chaos conformance harness: every solver must survive a hostile network.
//!
//! Sweeps {all four algorithms} × {every fault profile} × {seeds} and
//! asserts three invariants for each cell:
//!
//! 1. **Numerics are bit-identical** to the same solver's clean run —
//!    jitter, duplicate deliveries, adversarial any-source reordering,
//!    stragglers, and degraded links may change *when* messages arrive,
//!    never *what* is computed (order-independent ledger accumulation +
//!    idempotent duplicate handling).
//! 2. The clean run itself matches the sequential reference solve.
//! 3. Virtual-time inflation stays bounded — faults slow the simulated
//!    solve, they must not deadlock it (a stall would trip the simulator
//!    watchdog and panic with per-rank diagnostics rather than hang).
//!
//! Seeds come from `common::seeds()`; CI pins a larger matrix via the
//! `CHAOS_SEEDS` environment variable.

mod common;

use simgrid::{FaultPlan, MachineModel, PROFILE_NAMES};
use sptrsv_repro::prelude::*;
use std::sync::Arc;

const NRHS: usize = 2;

/// Generous ceiling on how much a fault profile may inflate the simulated
/// makespan (the straggler profile slows one rank 8×; "all" composes every
/// fault). Anything past this bound means livelock-grade retransmission,
/// not honest slowdown.
const MAKESPAN_INFLATION: f64 = 150.0;

fn fixture(pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), NRHS);
    let want = f.solve(&b, NRHS);
    (f, b, want)
}

fn config(
    alg: Algorithm,
    arch: Arch,
    (px, py, pz): (usize, usize, usize),
    fault: FaultPlan,
) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault,
        backend: Default::default(),
        executor: common::executor(),
    }
}

/// Run one solver through the full {profile} × {seed} sweep.
fn conformance(alg: Algorithm, arch: Arch, grid: (usize, usize, usize), profiles: &[&str]) {
    let (f, b, want) = fixture(grid.2);
    let clean = solve_distributed(&f, &b, &config(alg, arch, grid, FaultPlan::default()));
    let diff = sparse::max_abs_diff(&clean.x, &want);
    assert!(
        diff < 1e-9,
        "{alg:?}/{arch:?} clean solve disagrees with the sequential reference: diff {diff}"
    );

    let nranks = grid.0 * grid.1 * grid.2;
    for &profile in profiles {
        for &seed in &common::seeds() {
            let fault = FaultPlan::from_profile(profile, seed, nranks)
                .unwrap_or_else(|| panic!("profile {profile} must resolve"));
            let out = solve_distributed(&f, &b, &config(alg, arch, grid, fault.clone()));
            assert!(
                out.x == clean.x,
                "{alg:?}/{arch:?} produced different bits under chaos\n  \
                 profile: {profile}, seed: {seed}\n  fault plan: {fault:?}\n  \
                 max |diff| vs clean run: {:e}",
                sparse::max_abs_diff(&out.x, &clean.x)
            );
            let diff = sparse::max_abs_diff(&out.x, &want);
            assert!(
                diff < 1e-9,
                "{alg:?}/{arch:?} diverged from the sequential reference under chaos\n  \
                 profile: {profile}, seed: {seed}\n  fault plan: {fault:?}\n  diff: {diff:e}"
            );
            assert!(
                out.makespan <= clean.makespan * MAKESPAN_INFLATION + 0.05,
                "{alg:?}/{arch:?} virtual time blew up under chaos\n  \
                 profile: {profile}, seed: {seed}\n  fault plan: {fault:?}\n  \
                 makespan {:.3e}s vs clean {:.3e}s",
                out.makespan,
                clean.makespan
            );
        }
    }
}

#[test]
fn new3d_survives_every_fault_profile() {
    conformance(Algorithm::New3d, Arch::Cpu, (2, 2, 4), PROFILE_NAMES);
}

#[test]
fn new3d_flat_survives_every_fault_profile() {
    conformance(Algorithm::New3dFlat, Arch::Cpu, (2, 2, 4), PROFILE_NAMES);
}

#[test]
fn new3d_naive_allreduce_survives_every_fault_profile() {
    conformance(
        Algorithm::New3dNaiveAllreduce,
        Arch::Cpu,
        (2, 2, 4),
        PROFILE_NAMES,
    );
}

#[test]
fn baseline3d_survives_every_fault_profile() {
    conformance(Algorithm::Baseline3d, Arch::Cpu, (2, 2, 4), PROFILE_NAMES);
}

/// GPU executor spot-check under the composed "all" profile (the GPU
/// straggler knob only slows host-side compute, so the full sweep adds
/// little beyond this).
#[test]
fn gpu_new3d_survives_composed_chaos() {
    conformance(
        Algorithm::New3d,
        Arch::Gpu,
        (2, 1, 4),
        &["duplicates", "all"],
    );
}

// ---------------------------------------------------------------------------
// Exchange-layout conformance (DESIGN.md §15): live trimming is a pure
// wire optimization.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use sptrsv::{solve_planned, Plan, ZTrim};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// The live-trimmed exchange layout must be **bit-identical** to the
    /// dense (pre-trim) layout for every solver family, every fault
    /// profile, and whichever backend the CI matrix selects
    /// (`SPTRSV_TEST_BACKEND=sim|native`; fault injection is sim-private,
    /// so the native leg runs the clean cell of the sweep). R-MAT systems
    /// at deep `Pz` are exactly the shapes where live sets really shrink
    /// (PDE stencils keep every ancestor live), so the property is
    /// non-vacuous here: dead ancestors drop out of the pack lists and
    /// whole rounds elide, yet no `x` bit may drift — the trimmed entries
    /// only ever carried exact zeros.
    #[test]
    fn trimmed_layout_bit_identical_to_dense(
        seed in 0u64..1000,
        alg_i in 0usize..4,
        profile_i in 0usize..PROFILE_NAMES.len(),
        logpz in 2u32..4,
    ) {
        let alg = [
            Algorithm::New3d,
            Algorithm::New3dFlat,
            Algorithm::New3dNaiveAllreduce,
            Algorithm::Baseline3d,
        ][alg_i];
        let pz = 1usize << logpz;
        let (px, py) = (2, 1);
        let a = gen::rmat(8, 8, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
        let b = gen::standard_rhs(a.nrows(), NRHS);
        let want = f.solve(&b, NRHS);

        let backend = common::backend();
        let fault = if backend == Backend::Sim {
            FaultPlan::from_profile(PROFILE_NAMES[profile_i], seed, px * py * pz)
                .expect("profile resolves")
        } else {
            FaultPlan::default()
        };
        let mut cfg = config(alg, Arch::Cpu, (px, py, pz), fault.clone());
        cfg.backend = backend;

        let live = Arc::new(Plan::with_trim(Arc::clone(&f), px, py, pz, ZTrim::Live));
        let dense = Arc::new(Plan::with_trim(Arc::clone(&f), px, py, pz, ZTrim::Dense));
        let xl = solve_planned(&live, &b, &cfg).x;
        let xd = solve_planned(&dense, &b, &cfg).x;
        for (i, (l, d)) in xl.iter().zip(&xd).enumerate() {
            prop_assert!(
                l.to_bits() == d.to_bits(),
                "{alg:?} x[{i}] differs across exchange layouts\n  \
                 profile: {}, seed: {seed}, grid {px}x{py}x{pz}\n  \
                 live {l:e} vs dense {d:e}",
                PROFILE_NAMES[profile_i],
            );
        }
        let diff = sparse::max_abs_diff(&xl, &want);
        prop_assert!(
            diff < 1e-8,
            "{alg:?} trimmed solve diverged from the sequential reference\n  \
             seed: {seed}, grid {px}x{py}x{pz}, diff {diff:e}"
        );
    }
}
