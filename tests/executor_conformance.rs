//! Executor conformance: the choice of intra-grid execution engine must
//! never change the answer.
//!
//! The tree executor walks each pass reactively (fire whatever a message
//! unblocks); the level executor sweeps a precompiled level-set program
//! and blocks at per-row barriers. Both interpret the same Schedule IR,
//! and both fold contributions through the same stable-key ledger, so for
//! every matrix family, algorithm, backend, and fault profile the two
//! engines must produce **bit-identical** solutions.
//!
//! The matrix families deliberately span DAG shapes: Poisson (regular
//! mesh), banded (deep chain of narrow levels — barrier-heavy),
//! R-MAT (power-law hubs — imbalanced separators), and blocked-random
//! (bushy, wide levels). `SPTRSV_TEST_BACKEND` picks the backend for the
//! clean sweeps; chaos runs always use the simulator (faults are inert on
//! the native transport by design).

mod common;

use simgrid::{FaultPlan, MachineModel, PROFILE_NAMES};
use sptrsv_repro::prelude::*;
use std::sync::Arc;

const NRHS: usize = 2;

/// The irregular-family fixtures the engines must agree on. Sizes are
/// chosen so every family factors in milliseconds yet still has a
/// non-trivial elimination DAG at `pz = 4`.
fn families() -> Vec<(&'static str, sparse::CsrMatrix)> {
    vec![
        ("poisson2d_9pt", gen::poisson2d_9pt(12, 12)),
        ("banded", gen::banded(160, 4, 7)),
        ("rmat", gen::rmat(7, 6, 11)),
        ("blocked_random", gen::blocked_random(24, 6, 0.25, 13)),
    ]
}

fn config(
    alg: Algorithm,
    arch: Arch,
    (px, py, pz): (usize, usize, usize),
    executor: ExecutorKind,
    backend: Backend,
    fault: FaultPlan,
) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault,
        backend,
        executor,
    }
}

/// Solve every family with both engines and require bit-identical `x`
/// (and agreement with the sequential reference).
fn assert_engines_agree(alg: Algorithm, arch: Arch, grid: (usize, usize, usize)) {
    let backend = common::backend();
    for (name, a) in families() {
        let f = Arc::new(factorize(&a, grid.2, &SymbolicOptions::default()).expect("factorize"));
        let b = gen::standard_rhs(a.nrows(), NRHS);
        let want = f.solve(&b, NRHS);

        let run = |executor| {
            let cfg = config(alg, arch, grid, executor, backend, FaultPlan::default());
            solve_distributed(&f, &b, &cfg)
        };
        let tree = run(ExecutorKind::Tree);
        let level = run(ExecutorKind::Level);

        let diff = sparse::max_abs_diff(&tree.x, &want);
        assert!(
            diff < 1e-9,
            "{alg:?}/{arch:?}/{grid:?}/{name}: tree engine disagrees with the \
             sequential reference: {diff}"
        );
        assert_eq!(tree.x.len(), level.x.len());
        for (i, (t, l)) in tree.x.iter().zip(&level.x).enumerate() {
            assert_eq!(
                t.to_bits(),
                l.to_bits(),
                "{alg:?}/{arch:?}/{grid:?}/{name}: x[{i}] differs across engines: \
                 tree {t:e}, level {l:e}"
            );
        }

        // Both engines interpret the same compiled sends; only firing
        // order differs, so traffic totals must match exactly.
        let sent = |o: &SolveOutcome| {
            o.stats
                .iter()
                .map(|s| s.msgs_sent.iter().sum::<u64>())
                .sum::<u64>()
        };
        assert_eq!(
            sent(&tree),
            sent(&level),
            "{alg:?}/{arch:?}/{grid:?}/{name}: message counts diverge across engines"
        );
    }
}

#[test]
fn new3d_engines_agree_on_every_family() {
    assert_engines_agree(Algorithm::New3d, Arch::Cpu, (2, 2, 4));
}

#[test]
fn new3d_flat_engines_agree_on_every_family() {
    assert_engines_agree(Algorithm::New3dFlat, Arch::Cpu, (2, 2, 4));
}

#[test]
fn new3d_naive_allreduce_engines_agree_on_every_family() {
    assert_engines_agree(Algorithm::New3dNaiveAllreduce, Arch::Cpu, (2, 1, 4));
}

#[test]
fn baseline3d_engines_agree_on_every_family() {
    assert_engines_agree(Algorithm::Baseline3d, Arch::Cpu, (2, 2, 4));
}

#[test]
fn gpu_engines_agree_on_every_family() {
    assert_engines_agree(Algorithm::New3d, Arch::Gpu, (2, 1, 4));
}

/// The level engine must also be chaos-proof: per-level barriers change
/// *where* a rank blocks, never *what* it computes, so under every fault
/// profile the level engine's bits must match its own clean run — and the
/// tree engine's clean run. Chaos is a simulator-only feature, so this
/// sweep pins `Backend::Sim` regardless of the CI backend axis.
#[test]
fn level_engine_survives_every_fault_profile() {
    let (alg, arch, grid) = (Algorithm::New3d, Arch::Cpu, (2, 2, 4));
    for (name, a) in families() {
        let f = Arc::new(factorize(&a, grid.2, &SymbolicOptions::default()).expect("factorize"));
        let b = gen::standard_rhs(a.nrows(), NRHS);

        let clean = |executor| {
            let cfg = config(
                alg,
                arch,
                grid,
                executor,
                Backend::Sim,
                FaultPlan::default(),
            );
            solve_distributed(&f, &b, &cfg)
        };
        let tree = clean(ExecutorKind::Tree);
        let level = clean(ExecutorKind::Level);
        assert!(
            tree.x == level.x,
            "{name}: clean engines disagree before the chaos sweep"
        );

        let nranks = grid.0 * grid.1 * grid.2;
        for &profile in PROFILE_NAMES {
            for &seed in &common::seeds() {
                let fault = FaultPlan::from_profile(profile, seed, nranks)
                    .unwrap_or_else(|| panic!("profile {profile} must resolve"));
                let cfg = config(
                    alg,
                    arch,
                    grid,
                    ExecutorKind::Level,
                    Backend::Sim,
                    fault.clone(),
                );
                let out = solve_distributed(&f, &b, &cfg);
                assert!(
                    out.x == level.x,
                    "level engine produced different bits under chaos\n  \
                     family: {name}, profile: {profile}, seed: {seed}\n  \
                     fault plan: {fault:?}\n  max |diff| vs clean run: {:e}",
                    sparse::max_abs_diff(&out.x, &level.x)
                );
            }
        }
    }
}
