//! Integration tests of the virtual-time simulator semantics that the
//! SpTRSV experiments rely on.

use simgrid::{Category, ClusterOptions, MachineModel};

fn toy(latency: f64) -> MachineModel {
    MachineModel::uniform("toy", 1e9, latency, 1e9, 4)
}

/// Virtual time must be independent of real thread scheduling: repeated
/// runs of a nondeterministic-looking program give identical makespans.
#[test]
fn virtual_time_is_reproducible() {
    let run = || {
        simgrid::run(8, toy(1e-6), &ClusterOptions::default(), |c| {
            // All-to-one with deterministic per-rank compute.
            if c.rank() > 0 {
                c.compute(1e-6 * c.rank() as f64, Category::Flop);
                c.send(0, 1, &[c.rank() as f64], Category::XyComm);
            } else {
                for _ in 1..8 {
                    c.recv(None, Some(1), Category::XyComm);
                }
            }
            c.now()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan);
}

/// Higher latency must never make a communication-bound program faster.
#[test]
fn makespan_monotone_in_latency() {
    let mk = |lat: f64| {
        simgrid::run(4, toy(lat), &ClusterOptions::default(), |c| {
            // Ring of dependent messages.
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            if c.rank() == 0 {
                c.send(next, 0, &[1.0], Category::XyComm);
                c.recv(Some(prev), Some(0), Category::XyComm);
            } else {
                let m = c.recv(Some(prev), Some(0), Category::XyComm);
                c.send(next, 0, &m.payload, Category::XyComm);
            }
        })
        .makespan
    };
    let fast = mk(1e-6);
    let slow = mk(1e-5);
    assert!(slow > fast, "slow {slow} must exceed fast {fast}");
}

/// Intra-node messages must be cheaper than inter-node ones end to end.
#[test]
fn node_topology_affects_cost() {
    let m = MachineModel::cori_haswell();
    let mk = |dst: usize| {
        simgrid::run(64, m.clone(), &ClusterOptions::default(), move |c| {
            if c.rank() == 0 {
                c.send(dst, 0, &[0.0; 1000], Category::XyComm);
            } else if c.rank() == dst {
                c.recv(Some(0), Some(0), Category::XyComm);
            }
            c.now()
        })
    };
    let intra = mk(1); // same 32-rank node
    let inter = mk(63); // different node
    assert!(inter.makespan > intra.makespan);
}

/// Bytes and message counters must account exactly for what was sent.
#[test]
fn counters_are_exact() {
    let rep = simgrid::run(2, toy(1e-6), &ClusterOptions::default(), |c| {
        if c.rank() == 0 {
            c.send(1, 0, &[1.0; 10], Category::XyComm);
            c.send(1, 0, &[2.0; 20], Category::ZComm);
        } else {
            c.recv(Some(0), Some(0), Category::XyComm);
            c.recv(Some(0), Some(0), Category::ZComm);
        }
    });
    assert_eq!(rep.total_msgs(Category::XyComm), 1);
    assert_eq!(rep.total_msgs(Category::ZComm), 1);
    assert_eq!(rep.total_bytes(Category::XyComm), 8 * 10 + 64);
    assert_eq!(rep.total_bytes(Category::ZComm), 8 * 20 + 64);
}

/// Epoch-masked receives must leave messages of other epochs queued: a
/// rank can run ahead into the next phase without its early messages being
/// consumed by slower peers still in the previous phase.
#[test]
fn tag_masked_recv_preserves_other_epochs() {
    const EPOCH_MASK: u64 = !((1 << 48) - 1);
    let rep = simgrid::run(2, toy(1e-6), &ClusterOptions::default(), |c| {
        if c.rank() == 0 {
            // Send epoch-1 first, then epoch-0: receiver asks for epoch 0.
            c.send(1, 1 << 48 | 7, &[1.0], Category::XyComm);
            c.send(1, 7, &[0.0], Category::XyComm);
            0.0
        } else {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let m0 = c.recv_tag_masked(EPOCH_MASK, 0, Category::XyComm);
            let m1 = c.recv_tag_masked(EPOCH_MASK, 1 << 48, Category::XyComm);
            assert_eq!(m0.payload[0], 0.0);
            assert_eq!(m1.payload[0], 1.0);
            m0.payload[0] + m1.payload[0]
        }
    });
    assert_eq!(rep.results[1], 1.0);
}

/// The GPU executor's lane model must bound speedup by the concurrency.
#[test]
fn gpu_executor_concurrency_bound() {
    let mut gpu = MachineModel::perlmutter_gpu().gpu.unwrap();
    gpu.block_overhead = 0.0;
    gpu.concurrency = 4;
    let mut ex = simgrid::GpuExecutor::new(&gpu, 0.0);
    for _ in 0..16 {
        ex.schedule(0.0, 1.0);
    }
    // 16 unit tasks on 4 lanes: last finish = 4.
    assert_eq!(ex.last_finish(), 4.0);
    assert_eq!(ex.busy_time(), 16.0);
}

/// Barriers align clocks: after a barrier no rank's clock may precede the
/// slowest rank's pre-barrier clock.
#[test]
fn barrier_is_a_synchronization_point() {
    let rep = simgrid::run(6, toy(1e-6), &ClusterOptions::default(), |c| {
        c.compute(1e-3 * (c.rank() as f64), Category::Flop);
        c.barrier(Category::ZComm);
        c.now()
    });
    let slowest_work = 1e-3 * 5.0;
    for t in &rep.results {
        assert!(*t >= slowest_work);
    }
}
