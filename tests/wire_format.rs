//! Property tests for the wire envelope (`simgrid::wire`): every frame
//! round-trips bit-exactly through both the in-memory decoder and the
//! streaming reader, and every truncated or corrupted input maps to a
//! typed [`WireError`] — never a panic, never a partially decoded frame.

use proptest::prelude::*;
use simgrid::wire::{
    decode_frame, encode_frame, read_frame, FrameHeader, WireError, FLAG_BITMAP, MAGIC,
    MAX_BODY_WORDS, VERSION,
};
use std::io::Cursor;

/// Assemble a header whose tag carries an epoch in the high bits, the way
/// the solver's phase tags do (`epoch << 48 | low`).
fn header(
    comm_id: u64,
    src: u32,
    epoch: u16,
    low: u64,
    seq: u64,
    bitmap_words: u32,
) -> FrameHeader {
    FrameHeader {
        comm_id,
        src,
        bitmap_words,
        tag: (u64::from(epoch) << 48) | (low & ((1 << 48) - 1)),
        seq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Random envelopes and bodies — including `f64` bit patterns that are
    /// NaNs, infinities, and subnormals — survive encode → decode with
    /// every bit intact, through both decode paths.
    #[test]
    fn frames_round_trip_bit_exactly(
        comm_id in 0u64..u64::MAX,
        src in 0u32..4096,
        epoch in 0u16..u16::MAX,
        low in 0u64..(1u64 << 48),
        seq in 0u64..u64::MAX,
        bits in proptest::collection::vec(0u64..u64::MAX, 0..48),
        bitmap_frac in 0u32..=100,
    ) {
        let body: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let bitmap_words = (body.len() as u32 * bitmap_frac) / 100;
        let h = header(comm_id, src, epoch, low, seq, bitmap_words);

        let mut buf = Vec::new();
        encode_frame(&mut buf, &h, &body);

        // In-memory decode: header, every body bit, and the consumed
        // length must all match.
        let (dh, dbody, consumed) = decode_frame(&buf).expect("well-formed frame");
        prop_assert_eq!(dh, h);
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(dbody.len(), body.len());
        for (a, b) in dbody.iter().zip(&body) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Streaming decode over two back-to-back frames: framing must
        // self-delimit, and a clean EOF is `Closed`, not an error blob.
        let mut twice = buf.clone();
        encode_frame(&mut twice, &h, &body);
        let mut stream = Cursor::new(twice);
        let mut scratch = Vec::new();
        for _ in 0..2 {
            let (sh, sbody) = read_frame(&mut stream, &mut scratch).expect("streamed frame");
            prop_assert_eq!(sh, h);
            for (a, b) in sbody.iter().zip(&body) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        prop_assert_eq!(read_frame(&mut stream, &mut scratch), Err(WireError::Closed));
    }

    /// Any strict prefix of a valid frame is rejected with a typed error
    /// by both decode paths — no panic, no partial delivery.
    #[test]
    fn truncated_frames_are_rejected(
        tag in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        bits in proptest::collection::vec(0u64..u64::MAX, 1..32),
        cut_frac in 0u32..100,
    ) {
        let body: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let h = FrameHeader { comm_id: 1, src: 0, bitmap_words: 0, tag, seq };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &h, &body);

        let cut = (buf.len() * cut_frac as usize) / 100;
        prop_assert!(cut < buf.len());
        let err = decode_frame(&buf[..cut]).expect_err("truncated frame must not decode");
        prop_assert!(matches!(err, WireError::Truncated { .. }));

        let mut stream = Cursor::new(buf[..cut].to_vec());
        let mut scratch = Vec::new();
        let streamed = read_frame(&mut stream, &mut scratch).expect_err("truncated stream");
        match cut {
            0 => prop_assert_eq!(streamed, WireError::Closed),
            _ => prop_assert!(matches!(
                streamed,
                WireError::Io(_) | WireError::Truncated { .. }
            )),
        }
    }

    /// Arbitrary byte soup never panics the decoder: every input yields
    /// either a valid frame or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        if let Ok((_, _, consumed)) = decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
        let mut stream = Cursor::new(bytes);
        let mut scratch = Vec::new();
        let _ = read_frame(&mut stream, &mut scratch);
    }

    /// Single-byte corruption of a valid frame either still decodes (the
    /// flip landed in an unchecked field or the body) or fails with a
    /// typed error — never a panic, and never a frame of the wrong shape.
    #[test]
    fn corrupt_bytes_yield_typed_errors(
        bits in proptest::collection::vec(0u64..u64::MAX, 1..16),
        pos_frac in 0u32..100,
        flip in 1u8..=255,
    ) {
        let body: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let h = FrameHeader { comm_id: 7, src: 3, bitmap_words: 1, tag: 42, seq: 9 };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &h, &body);
        let pos = (buf.len() * pos_frac as usize) / 100;
        buf[pos] ^= flip;

        match decode_frame(&buf) {
            // Flip landed somewhere content-only: the frame still parses
            // and still spans exactly the bytes it did before.
            Ok((_, decoded_body, consumed)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(decoded_body.len(), body.len());
            }
            Err(e) => prop_assert!(!matches!(e, WireError::Closed)),
        }
    }
}

#[test]
fn bad_magic_and_version_are_identified() {
    let h = FrameHeader {
        comm_id: 1,
        src: 0,
        bitmap_words: 0,
        tag: 5,
        seq: 1,
    };
    let mut buf = Vec::new();
    encode_frame(&mut buf, &h, &[1.0, 2.0]);

    let mut bad_magic = buf.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        decode_frame(&bad_magic),
        Err(WireError::BadMagic(_))
    ));

    let mut bad_version = buf.clone();
    bad_version[4] = (VERSION + 1) as u8;
    assert!(matches!(
        decode_frame(&bad_version),
        Err(WireError::BadVersion(_))
    ));

    // Sanity: the untouched frame still decodes.
    assert_eq!(&buf[..4], &MAGIC);
    assert!(decode_frame(&buf).is_ok());
}

#[test]
fn structural_lies_are_identified() {
    let h = FrameHeader {
        comm_id: 1,
        src: 0,
        bitmap_words: 0,
        tag: 5,
        seq: 1,
    };
    let mut buf = Vec::new();
    encode_frame(&mut buf, &h, &[1.0, 2.0, 3.0]);

    // body_len (offset 48) raised without growing the frame: the two
    // length fields disagree.
    let mut liar = buf.clone();
    liar[48] = liar[48].wrapping_add(1);
    assert!(matches!(
        decode_frame(&liar),
        Err(WireError::LengthMismatch { .. })
    ));

    // bitmap_words (offset 28) claiming more words than the body holds.
    let mut overrun = buf.clone();
    overrun[28] = 200;
    assert!(matches!(
        decode_frame(&overrun),
        Err(WireError::BitmapOverrun { .. })
    ));

    // frame_len (offset 8) promising more than MAX_BODY_WORDS: rejected
    // before any allocation is sized from it.
    let mut huge = buf.clone();
    let frame_len = 40 + 8 * (MAX_BODY_WORDS + 1);
    huge[8..16].copy_from_slice(&frame_len.to_le_bytes());
    assert!(matches!(
        decode_frame(&huge),
        Err(WireError::Oversize { .. })
    ));
}

#[test]
fn bitmap_flag_tracks_bitmap_words() {
    let mut with = Vec::new();
    encode_frame(
        &mut with,
        &FrameHeader {
            comm_id: 1,
            src: 0,
            bitmap_words: 1,
            tag: 0,
            seq: 0,
        },
        &[0.5, f64::from_bits(0b1011)],
    );
    let flags = u16::from_le_bytes([with[6], with[7]]);
    assert_eq!(flags & FLAG_BITMAP, FLAG_BITMAP);

    let mut without = Vec::new();
    encode_frame(
        &mut without,
        &FrameHeader {
            comm_id: 1,
            src: 0,
            bitmap_words: 0,
            tag: 0,
            seq: 0,
        },
        &[0.5],
    );
    let flags = u16::from_le_bytes([without[6], without[7]]);
    assert_eq!(flags & FLAG_BITMAP, 0);
}
