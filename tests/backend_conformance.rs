//! Cross-backend conformance: the solver core is generic over the
//! [`Transport`](simgrid::Transport), and the choice of wires must never
//! change the answer.
//!
//! For every algorithm variant on the conformance fixtures, the solution
//! `x` must be **bit-identical** between the virtual-time simulator
//! (`Backend::Sim`) and the real shared-memory threaded transport
//! (`Backend::Native`). This holds because
//!
//! - ledger accumulation is delivery-order-independent (fixed per-slot
//!   ordering, not arrival ordering),
//! - point-to-point traffic is `(src, tag)`-addressed, and
//! - collectives use the same fixed binomial reduction shape on both
//!   backends.
//!
//! Native timing is real wall-clock, so only the numerics (and message
//! counts) are compared — never the clocks.

mod common;

use sptrsv_repro::prelude::*;
use std::sync::Arc;

const NRHS: usize = 2;

fn fixture(pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), NRHS);
    let want = f.solve(&b, NRHS);
    (f, b, want)
}

fn config(alg: Algorithm, arch: Arch, (px, py, pz): (usize, usize, usize)) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: Backend::Sim,
        executor: common::executor(),
    }
}

/// Solve the fixture on both backends and require bit-identical `x`.
fn assert_backends_agree(alg: Algorithm, arch: Arch, grid: (usize, usize, usize)) {
    let (f, b, want) = fixture(grid.2);
    let sim_cfg = config(alg, arch, grid);
    let nat_cfg = SolverConfig {
        backend: Backend::Native,
        ..sim_cfg.clone()
    };
    let sim = solve_distributed(&f, &b, &sim_cfg);
    let nat = solve_distributed(&f, &b, &nat_cfg);

    let diff = sparse::max_abs_diff(&sim.x, &want);
    assert!(
        diff < 1e-9,
        "{alg:?}/{arch:?}/{grid:?}: sim disagrees with the sequential reference: {diff}"
    );
    assert_eq!(sim.x.len(), nat.x.len());
    for (i, (s, n)) in sim.x.iter().zip(&nat.x).enumerate() {
        assert_eq!(
            s.to_bits(),
            n.to_bits(),
            "{alg:?}/{arch:?}/{grid:?}: x[{i}] differs across backends: sim {s:e}, native {n:e}"
        );
    }
    assert!(
        sim.replication_disagreement == 0.0 && nat.replication_disagreement == 0.0,
        "{alg:?}/{arch:?}/{grid:?}: replicated grids disagreed"
    );

    // Message accounting is backend-portable (same sends, same payloads);
    // clocks are not — native makespan is real wall time, just sanity it.
    let sent = |o: &SolveOutcome| {
        o.stats
            .iter()
            .map(|s| s.msgs_sent.iter().sum::<u64>())
            .sum()
    };
    let (sm, nm): (u64, u64) = (sent(&sim), sent(&nat));
    assert_eq!(sm, nm, "{alg:?}/{arch:?}/{grid:?}: message counts diverge");
    assert!(nat.makespan.is_finite() && nat.makespan > 0.0);
}

#[test]
fn new3d_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3d, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3d, Arch::Cpu, (2, 1, 4));
}

#[test]
fn new3d_flat_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3dFlat, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dFlat, Arch::Cpu, (2, 1, 4));
}

#[test]
fn new3d_naive_allreduce_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Cpu, (2, 1, 4));
}

#[test]
fn baseline3d_cpu_backends_agree() {
    assert_backends_agree(Algorithm::Baseline3d, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::Baseline3d, Arch::Cpu, (2, 1, 4));
}

#[test]
fn gpu_variants_backends_agree() {
    assert_backends_agree(Algorithm::New3d, Arch::Gpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Gpu, (2, 1, 4));
}

/// Repeated native solves through the compiled-schedule path stay
/// bit-stable run to run (real thread interleavings change arrival
/// order; the ledger makes numerics independent of it).
#[test]
fn native_is_bit_stable_across_runs() {
    let grid = (2, 2, 4);
    let (f, b, _) = fixture(grid.2);
    let cfg = SolverConfig {
        backend: Backend::Native,
        ..config(Algorithm::New3d, Arch::Cpu, grid)
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);
    let first = solver.solve(&b, NRHS);
    for _ in 0..3 {
        let again = solver.solve(&b, NRHS);
        for (s, n) in first.x.iter().zip(&again.x) {
            assert_eq!(s.to_bits(), n.to_bits(), "native run-to-run drift");
        }
    }
}
