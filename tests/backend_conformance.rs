//! Cross-backend conformance: the solver core is generic over the
//! [`Transport`](simgrid::Transport), and the choice of wires must never
//! change the answer.
//!
//! For every algorithm variant on the conformance fixtures, the solution
//! `x` must be **bit-identical** between the virtual-time simulator
//! (`Backend::Sim`), the real shared-memory threaded transport
//! (`Backend::Native`), and the process-per-rank socket transport
//! (`Backend::Proc`). This holds because
//!
//! - ledger accumulation is delivery-order-independent (fixed per-slot
//!   ordering, not arrival ordering),
//! - point-to-point traffic is `(src, tag)`-addressed, and
//! - collectives use the same fixed binomial reduction shape on all
//!   backends (one shared implementation in `simgrid::collectives`).
//!
//! Native and proc timing is real wall-clock, so only the numerics (and
//! message counts) are compared — never the clocks.
//!
//! The CI backend matrix pins one backend per job with
//! `SPTRSV_TEST_BACKEND=sim|native|proc`; unset, every real backend is
//! checked against the simulator in one run.

mod common;

use sptrsv_repro::prelude::*;
use std::sync::Arc;

const NRHS: usize = 2;

fn fixture(pz: usize) -> (Arc<Factorized>, Vec<f64>, Vec<f64>) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), NRHS);
    let want = f.solve(&b, NRHS);
    (f, b, want)
}

fn config(alg: Algorithm, arch: Arch, (px, py, pz): (usize, usize, usize)) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: NRHS,
        algorithm: alg,
        arch,
        machine: if arch == Arch::Gpu {
            MachineModel::perlmutter_gpu()
        } else {
            MachineModel::cori_haswell()
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: Backend::Sim,
        executor: common::executor(),
    }
}

/// Real backends to check against the simulator. The CI matrix pins one
/// via `SPTRSV_TEST_BACKEND`; pinning `sim` reduces the suite to the
/// reference check alone (the simulator *is* the baseline).
fn backends_under_test() -> Vec<Backend> {
    if std::env::var("SPTRSV_TEST_BACKEND").is_ok() {
        match common::backend() {
            Backend::Sim => vec![],
            other => vec![other],
        }
    } else {
        vec![Backend::Native, Backend::Proc]
    }
}

/// Total point-to-point sends across all ranks.
fn total_sent(o: &SolveOutcome) -> u64 {
    o.stats
        .iter()
        .map(|s| s.msgs_sent.iter().sum::<u64>())
        .sum()
}

/// Solve the fixture on every backend under test and require `x`
/// bit-identical to the simulator's.
fn assert_backends_agree(alg: Algorithm, arch: Arch, grid: (usize, usize, usize)) {
    let (f, b, want) = fixture(grid.2);
    let sim_cfg = config(alg, arch, grid);
    let sim = solve_distributed(&f, &b, &sim_cfg);

    let diff = sparse::max_abs_diff(&sim.x, &want);
    assert!(
        diff < 1e-9,
        "{alg:?}/{arch:?}/{grid:?}: sim disagrees with the sequential reference: {diff}"
    );
    assert!(
        sim.replication_disagreement == 0.0,
        "{alg:?}/{arch:?}/{grid:?}: replicated grids disagreed under sim"
    );

    for backend in backends_under_test() {
        let cfg = SolverConfig {
            backend,
            ..sim_cfg.clone()
        };
        let real = solve_distributed(&f, &b, &cfg);

        assert_eq!(sim.x.len(), real.x.len());
        for (i, (s, r)) in sim.x.iter().zip(&real.x).enumerate() {
            assert_eq!(
                s.to_bits(),
                r.to_bits(),
                "{alg:?}/{arch:?}/{grid:?}: x[{i}] differs across backends: \
                 sim {s:e}, {backend:?} {r:e}"
            );
        }
        assert!(
            real.replication_disagreement == 0.0,
            "{alg:?}/{arch:?}/{grid:?}: replicated grids disagreed under {backend:?}"
        );

        // Message accounting is backend-portable (same sends, same
        // payloads); clocks are not — real makespans are wall time, so
        // just sanity them.
        assert_eq!(
            total_sent(&sim),
            total_sent(&real),
            "{alg:?}/{arch:?}/{grid:?}: message counts diverge on {backend:?}"
        );
        assert!(real.makespan.is_finite() && real.makespan > 0.0);
    }
}

#[test]
fn new3d_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3d, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3d, Arch::Cpu, (2, 1, 4));
}

#[test]
fn new3d_flat_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3dFlat, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dFlat, Arch::Cpu, (2, 1, 4));
}

#[test]
fn new3d_naive_allreduce_cpu_backends_agree() {
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Cpu, (2, 1, 4));
}

#[test]
fn baseline3d_cpu_backends_agree() {
    assert_backends_agree(Algorithm::Baseline3d, Arch::Cpu, (2, 2, 4));
    assert_backends_agree(Algorithm::Baseline3d, Arch::Cpu, (2, 1, 4));
}

#[test]
fn gpu_variants_backends_agree() {
    assert_backends_agree(Algorithm::New3d, Arch::Gpu, (2, 2, 4));
    assert_backends_agree(Algorithm::New3dNaiveAllreduce, Arch::Gpu, (2, 1, 4));
}

/// Repeated native solves through the compiled-schedule path stay
/// bit-stable run to run (real thread interleavings change arrival
/// order; the ledger makes numerics independent of it).
#[test]
fn native_is_bit_stable_across_runs() {
    let grid = (2, 2, 4);
    let (f, b, _) = fixture(grid.2);
    let cfg = SolverConfig {
        backend: Backend::Native,
        ..config(Algorithm::New3d, Arch::Cpu, grid)
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);
    let first = solver.solve(&b, NRHS);
    for _ in 0..3 {
        let again = solver.solve(&b, NRHS);
        for (s, n) in first.x.iter().zip(&again.x) {
            assert_eq!(s.to_bits(), n.to_bits(), "native run-to-run drift");
        }
    }
}

/// The proc backend must actually put each rank in its own OS process:
/// every rank publishes its PID as a metric counter, and all of them
/// must be distinct from each other and from the test harness.
#[test]
fn proc_ranks_run_in_separate_processes() {
    let grid = (2, 2, 2);
    let (f, b, want) = fixture(grid.2);
    let cfg = SolverConfig {
        backend: Backend::Proc,
        ..config(Algorithm::New3d, Arch::Cpu, grid)
    };
    let out = solve_distributed(&f, &b, &cfg);
    assert!(sparse::max_abs_diff(&out.x, &want) < 1e-9);

    let nranks = grid.0 * grid.1 * grid.2;
    let mut pids = Vec::new();
    for r in 0..nranks {
        let pid = out.metrics.counter(&format!("proc.pid.rank{r}"));
        assert!(pid != 0, "rank {r} did not publish a PID counter");
        assert_ne!(
            pid,
            u64::from(std::process::id()),
            "rank {r} ran inside the test harness process"
        );
        pids.push(pid);
    }
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), nranks, "ranks shared OS processes: {pids:?}");
}
