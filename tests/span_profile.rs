//! Span-profile conformance: for every solver algorithm, folding a traced
//! solve's timelines through [`sptrsv::span_profile`] yields an exhaustive
//! profile — the rank-averaged self times (including the explicit idle
//! rows) sum to the measured makespan, and the collapsed-stack export
//! preserves that total in integer nanoseconds.
//!
//! This is the same tiling invariant `tests/telemetry.rs` checks for the
//! critical-path walk, exercised through the aggregation path the
//! `--profile-out` flag and the serving layer use.

use lufactor::factorize;
use ordering::SymbolicOptions;
use simgrid::MachineModel;
use sparse::gen;
use sptrsv::{solve_traced, span_profile, Plan};
use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn cfg(px: usize, py: usize, pz: usize, algorithm: Algorithm, arch: Arch) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: 1,
        algorithm,
        arch,
        machine: match arch {
            Arch::Cpu => MachineModel::cori_haswell(),
            Arch::Gpu => MachineModel::perlmutter_gpu(),
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    }
}

/// Run one traced solve and return its profile plus the makespan.
fn profile_of(algorithm: Algorithm, arch: Arch) -> (sptrsv::SpanProfile, f64) {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, 4, &SymbolicOptions::default()).unwrap());
    let b = gen::standard_rhs(a.nrows(), 1);
    let c = cfg(2, 2, 4, algorithm, arch);
    let plan = Arc::new(Plan::new(Arc::clone(&f), 2, 2, 4));
    let out = solve_traced(&plan, &b, &c, true);
    assert!(!out.traces.is_empty(), "traced solve produced no timelines");
    (span_profile(&out.traces, out.makespan), out.makespan)
}

#[test]
fn profiles_sum_to_makespan_for_all_algorithms() {
    for algorithm in [
        Algorithm::New3d,
        Algorithm::New3dFlat,
        Algorithm::New3dNaiveAllreduce,
        Algorithm::Baseline3d,
    ] {
        let (p, makespan) = profile_of(algorithm, Arch::Cpu);
        assert_eq!(p.nranks, 16, "{algorithm:?}: wrong rank count");
        assert!(
            (p.total_seconds() - makespan).abs() <= 1e-6 * makespan.max(1e-12),
            "{algorithm:?}: profile sums to {} but makespan is {makespan}",
            p.total_seconds()
        );
        // Collapsed-stack nanoseconds carry the same total.
        let total_ns: u64 = p
            .to_collapsed()
            .lines()
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("{algorithm:?}: malformed collapsed line {l:?}"))
            })
            .sum();
        let makespan_ns = makespan * 1e9;
        assert!(
            (total_ns as f64 - makespan_ns).abs() <= 1e-6 * makespan_ns + p.entries.len() as f64,
            "{algorithm:?}: collapsed stack sums to {total_ns} ns, makespan {makespan_ns} ns"
        );
        // Real solver semantics survive aggregation: every CPU profile has
        // pass rows and the proposed algorithms have z-allreduce rows.
        assert!(
            p.entries.iter().any(|e| e.pass.starts_with("pass e")),
            "{algorithm:?}: no pass rows"
        );
        if algorithm != Algorithm::Baseline3d {
            assert!(
                p.entries.iter().any(|e| e.pass == "z-allreduce"),
                "{algorithm:?}: no z-allreduce rows"
            );
        }
    }
}

/// GPU passes emit one covering span per pass; the profile still accounts
/// for the whole makespan (idle rows absorb the drain gaps).
#[test]
fn gpu_profile_is_exhaustive_too() {
    let (p, makespan) = profile_of(Algorithm::New3d, Arch::Gpu);
    assert!(
        (p.total_seconds() - makespan).abs() <= 1e-6 * makespan.max(1e-12),
        "gpu profile sums to {} but makespan is {makespan}",
        p.total_seconds()
    );
    assert!(
        p.entries.iter().any(|e| e.kind.starts_with("gpu ")),
        "no gpu rows in a gpu profile"
    );
}

/// The profile a service accumulates over batches is exhaustive over the
/// accumulated in-solver time (flight-recorder timelines, wall clock).
#[test]
fn serving_profile_accumulates_across_batches() {
    let a = gen::poisson2d_9pt(12, 12);
    let n = a.nrows();
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
    let c = cfg(2, 2, 2, Algorithm::New3d, Arch::Cpu);
    let svc = SolverService::start(Solver3d::new(f, c), ServiceConfig::default());
    let b = gen::standard_rhs(n, 1);
    for _ in 0..3 {
        svc.solve(&b, 1).unwrap();
    }
    let p = svc.span_profile();
    assert!(p.makespan > 0.0, "no solve time accumulated");
    assert!(
        (p.total_seconds() - p.makespan).abs() <= 1e-6 * p.makespan,
        "serving profile sums to {} over accumulated makespan {}",
        p.total_seconds(),
        p.makespan
    );
    svc.shutdown();
}
