//! Golden snapshot of the compiled communication-schedule IR.
//!
//! The schedule is the contract between the compiler and all four solver
//! interpreters: broadcast/reduction trees, pass specs, pack lists, and
//! z-exchange roles. This test pins the full serde JSON of one small but
//! non-trivial compile (2 × 2 × 2 grid, tree communication) against a
//! committed fixture, so an accidental change to tag layout, tree shape,
//! or pack ordering shows up as a readable JSON diff instead of a numeric
//! mystery three layers downstream.
//!
//! Intentional IR changes: regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test schedule_golden` and commit the diff.
//!
//! Migration note (PR 9, sparsity-aware inter-grid exchange): `ZStep` and
//! `NaiveNode` gained a `dense_doubles` field (the untrimmed payload width
//! the `comm.z.bytes_saved` accounting is measured against), and under the
//! default `ZTrim::Live` plan the `sups` pack lists carry only supernodes
//! some grid of the step's sender subtree is live for. On this fixture
//! (2 × 2 × 2 over a 9-point Poisson grid) every replicated ancestor is
//! live, so the expected diff is the new field alone — list contents and
//! ordering are unchanged. Pre-PR9 serialized schedules lack the field and
//! must be regenerated (the vendored serde stand-in has no `#[serde
//! (default)]`).

use sptrsv::schedule::ScheduleKey;
use sptrsv::Plan;
use sptrsv_repro::prelude::*;
use std::sync::Arc;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/schedule_new3d_2x2x2.json"
);

#[test]
fn compiled_schedule_matches_golden_fixture() {
    let a = gen::poisson2d_9pt(8, 8);
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).expect("factorize"));
    let plan = Plan::new(Arc::clone(&f), 2, 2, 2);
    let sched = plan.schedule(ScheduleKey {
        baseline: false,
        tree_comm: true,
    });
    let mut got = serde_json::to_string_pretty(&*sched).expect("schedule serializes");
    got.push('\n');

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        eprintln!("updated {FIXTURE}");
        return;
    }

    let want = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|e| panic!("cannot read {FIXTURE}: {e}\nrun with UPDATE_GOLDEN=1 once"));
    assert!(
        got == want,
        "compiled schedule IR drifted from the golden fixture.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test --test schedule_golden\n\
         and review the JSON diff. Fixture: {FIXTURE}"
    );
}
