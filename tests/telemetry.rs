//! Conformance tests of the structured-telemetry stack: traced spans,
//! the Perfetto exporter, the metrics registry, and the critical-path
//! engine — across all four solver configurations (new-3D CPU, baseline
//! 3D, single-GPU, multi-GPU) and under every chaos fault profile.
//!
//! The load-bearing invariant is *tiling*: per rank, traced spans cover
//! the virtual clock contiguously, so the backward critical-path walk
//! telescopes to exactly the makespan. Everything else (flow pairing,
//! DAG validity) layers on the message sequence ids.

use proptest::prelude::*;
use simgrid::{export_perfetto, EventKind, FaultPlan, MachineModel, TraceEvent, PROFILE_NAMES};
use sptrsv::{solve_traced, Plan};
use sptrsv_repro::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_new3d_2x2x2.json"
);

fn cfg(px: usize, py: usize, pz: usize, algorithm: Algorithm, arch: Arch) -> SolverConfig {
    SolverConfig {
        px,
        py,
        pz,
        nrhs: 1,
        algorithm,
        arch,
        machine: match arch {
            Arch::Cpu => MachineModel::cori_haswell(),
            Arch::Gpu => MachineModel::perlmutter_gpu(),
        },
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    }
}

fn traced_solve(a: &CsrMatrix, cfg: &SolverConfig) -> SolveOutcome {
    let f = Arc::new(factorize(a, cfg.pz, &SymbolicOptions::default()).expect("factorize"));
    let plan = Arc::new(Plan::new(f, cfg.px, cfg.py, cfg.pz));
    let b = gen::standard_rhs(a.nrows(), cfg.nrhs);
    solve_traced(&plan, &b, cfg, true)
}

/// Structural validity of a traced span set: per-rank spans are
/// non-overlapping and within the makespan, and no message is received
/// before its matching send departs (arrival ≥ send-span end, linked by
/// sequence id — duplicates share the original's id).
fn assert_valid_span_dag(traces: &[Vec<TraceEvent>], makespan: f64) {
    let mut send_end: HashMap<u64, f64> = HashMap::new();
    for tl in traces {
        for e in tl {
            if e.kind == EventKind::Send {
                if let Some(m) = &e.msg {
                    send_end.insert(m.seq, e.t1);
                }
            }
        }
    }
    let mut recvs = 0usize;
    for (rank, tl) in traces.iter().enumerate() {
        let mut t = 0.0f64;
        for e in tl {
            assert!(
                e.t0 >= t - 1e-15,
                "rank {rank}: span starting {} overlaps previous end {t}",
                e.t0
            );
            assert!(e.t1 >= e.t0, "rank {rank}: negative-length span");
            assert!(e.t1 <= makespan + 1e-12, "rank {rank}: span past makespan");
            t = e.t1;
            if e.kind == EventKind::Recv {
                if let Some(m) = &e.msg {
                    recvs += 1;
                    let sent = send_end
                        .get(&m.seq)
                        .unwrap_or_else(|| panic!("rank {rank}: recv seq {} has no send", m.seq));
                    assert!(
                        m.arrival >= *sent - 1e-15,
                        "rank {rank}: message {} received (arrival {}) before its \
                         send completed ({sent})",
                        m.seq,
                        m.arrival
                    );
                }
            }
        }
    }
    assert!(recvs > 0, "a distributed solve must receive messages");
}

/// Tentpole acceptance: every solver configuration produces a telemetry
/// set whose critical path telescopes to exactly the makespan, whose
/// Perfetto export is valid JSON, and whose metrics registry saw the
/// traffic.
#[test]
fn critical_path_equals_makespan_for_all_solvers() {
    let a = gen::poisson2d_9pt(12, 12);
    for (label, c) in [
        ("new3d-cpu", cfg(2, 2, 2, Algorithm::New3d, Arch::Cpu)),
        ("baseline3d", cfg(2, 2, 2, Algorithm::Baseline3d, Arch::Cpu)),
        ("single-gpu", cfg(1, 1, 2, Algorithm::New3d, Arch::Gpu)),
        ("multi-gpu", cfg(2, 1, 2, Algorithm::New3d, Arch::Gpu)),
    ] {
        let out = traced_solve(&a, &c);
        assert!(out.makespan > 0.0, "{label}: empty makespan");
        assert_valid_span_dag(&out.traces, out.makespan);

        let cp = out.critical_path();
        assert!(
            (cp.length - out.makespan).abs() < 1e-9,
            "{label}: critical path {} != makespan {}",
            cp.length,
            out.makespan
        );
        assert_eq!(cp.makespan, out.makespan);
        assert!(cp.spans > 0, "{label}: path visits no spans");
        let busy: f64 = cp.by_category.iter().sum();
        assert!(
            (busy + cp.idle - cp.length).abs() < 1e-12,
            "{label}: composition does not add up"
        );
        // The report and JSON snapshot render without panicking and the
        // snapshot parses back.
        let _ = cp.report(5);
        let v: serde_json::Value = serde_json::from_str(&cp.to_json()).expect("cp json parses");
        assert!(v.get("by_category").is_some());

        // Perfetto export: valid JSON with per-rank thread metadata.
        let trace: serde_json::Value =
            serde_json::from_str(&export_perfetto(&out.traces, c.px * c.py))
                .unwrap_or_else(|e| panic!("{label}: perfetto export invalid: {e}"));
        let serde_json::Value::Array(events) = trace.get("traceEvents").expect("traceEvents")
        else {
            panic!("{label}: traceEvents not an array");
        };
        let nranks = c.px * c.py * c.pz;
        assert!(events.len() > 2 * nranks, "{label}: too few trace events");

        // Metrics registry: every sent message was counted and sized.
        assert!(out.metrics.counter("msgs.sent") > 0);
        assert_eq!(
            out.metrics.counter("msgs.sent"),
            out.metrics.counter("msgs.received"),
            "{label}: sends and deliveries disagree"
        );
        assert!(out.metrics.counter("pass.spans") > 0);
        let h = out
            .metrics
            .histogram("msgs.bytes")
            .expect("bytes histogram");
        assert_eq!(h.count(), out.metrics.counter("msgs.sent"));
    }
}

/// The multi-GPU drain span and the CPU recv spans attribute comm time:
/// a traced critical path must contain at least one cross-rank blocking
/// edge on any layout with real communication.
#[test]
fn critical_path_reports_blocking_edges() {
    let a = gen::poisson2d_9pt(12, 12);
    let out = traced_solve(&a, &cfg(2, 2, 2, Algorithm::New3d, Arch::Cpu));
    let cp = out.critical_path();
    assert!(!cp.edges.is_empty(), "2x2x2 solve has cross-rank deps");
    // Edges arrive sorted by stall, and every edge is internally sane.
    for w in cp.edges.windows(2) {
        assert!(w[0].stall >= w[1].stall);
    }
    for e in &cp.edges {
        assert!(e.src != e.dst, "self-edges cannot block");
        assert!(e.stall > 0.0, "edges are only recorded for real stalls");
        assert!(e.wire >= 0.0);
        assert!(e.bytes > 64, "on-wire size includes the envelope");
    }
    let report = cp.report(5);
    assert!(report.contains("critical path:"));
    assert!(report.contains("top blocking edges"));
}

/// An untraced outcome yields a well-defined all-zero critical path
/// rather than a panic.
#[test]
fn untraced_outcome_has_empty_critical_path() {
    let a = gen::poisson2d_5pt(8, 8);
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), 1);
    let out = solve_distributed(&f, &b, &cfg(2, 2, 2, Algorithm::New3d, Arch::Cpu));
    assert!(out.traces.iter().all(|t| t.is_empty()));
    let cp = out.critical_path();
    assert_eq!(cp.spans, 0);
    assert_eq!(cp.length, 0.0);
    assert!(cp.edges.is_empty());
}

/// Golden snapshot of a tiny 2×2×2 solve's Perfetto export. Pins the
/// exporter's event schema (names, args, flow pairing) *and* the traced
/// schedule's event sequence. Intentional changes: regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test telemetry` and review the diff.
#[test]
fn perfetto_export_matches_golden_fixture() {
    let a = gen::poisson2d_5pt(6, 6);
    let out = traced_solve(&a, &cfg(2, 2, 2, Algorithm::New3d, Arch::Cpu));
    let got = export_perfetto(&out.traces, 4);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("write fixture");
        eprintln!("updated {GOLDEN}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("cannot read {GOLDEN}: {e}\nrun with UPDATE_GOLDEN=1 once"));
    assert!(
        got == want,
        "Perfetto export drifted from the golden fixture.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test --test telemetry\n\
         and review the JSON diff. Fixture: {GOLDEN}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Under every chaos fault profile (jitter, duplicates, reorder,
    /// stragglers, degraded links, all at once) the traced span set stays
    /// a valid DAG and the critical path still telescopes to the
    /// makespan — telemetry must not lie precisely when the network
    /// misbehaves.
    #[test]
    fn telemetry_sound_under_all_fault_profiles(
        profile_idx in 0usize..PROFILE_NAMES.len(),
        seed in 1u64..10_000,
        baseline in proptest::bool::ANY,
    ) {
        let profile = PROFILE_NAMES[profile_idx];
        let a = gen::poisson2d_9pt(10, 10);
        let (px, py, pz) = (2, 2, 2);
        let fault = FaultPlan::from_profile(profile, seed, px * py * pz)
            .expect("known profile");
        let mut c = cfg(
            px, py, pz,
            if baseline { Algorithm::Baseline3d } else { Algorithm::New3d },
            Arch::Cpu,
        );
        c.chaos_seed = seed;
        c.fault = fault;
        let out = traced_solve(&a, &c);

        assert_valid_span_dag(&out.traces, out.makespan);
        let cp = out.critical_path();
        prop_assert!(
            (cp.length - out.makespan).abs() < 1e-9,
            "profile {}: critical path {} != makespan {}",
            profile, cp.length, out.makespan
        );
        // Fault annotations only ever appear when the profile injects
        // faults; a clean profile must leave every span unmarked.
        let marked = out
            .traces
            .iter()
            .flatten()
            .filter(|e| e.msg.is_some_and(|m| m.faults.any()))
            .count();
        if profile == "clean" {
            prop_assert!(marked == 0, "clean profile marked {} spans", marked);
        }
        // The exporter stays valid JSON under every profile.
        let v: serde_json::Value =
            serde_json::from_str(&export_perfetto(&out.traces, px * py)).expect("parses");
        prop_assert!(v.get("traceEvents").is_some());
    }
}
