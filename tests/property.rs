//! Property-based tests (proptest) on the core invariants: random sparse
//! systems, random grid shapes, and the building blocks (nested dissection,
//! sparse allreduce semantics, block-cyclic coverage).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sptrsv::schedule::{Schedule, ScheduleKey};
use sptrsv::Plan;
use sptrsv_repro::prelude::*;
use std::sync::Arc;

/// A random structurally symmetric, strictly diagonally dominant matrix.
fn random_sym_dd(n: usize, extra_edges: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = sparse::CooMatrix::new(n);
    let mut rowsum = vec![0.0f64; n];
    let push_sym =
        |coo: &mut sparse::CooMatrix, rowsum: &mut Vec<f64>, i: usize, j: usize, v: f64| {
            coo.push(i, j, v);
            coo.push(j, i, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        };
    // Chain for irreducibility.
    for i in 0..n - 1 {
        let v = -(0.2 + rng.gen::<f64>());
        push_sym(&mut coo, &mut rowsum, i, i + 1, v);
    }
    for _ in 0..extra_edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let v = -(0.1 + rng.gen::<f64>());
        push_sym(&mut coo, &mut rowsum, i.min(j), i.max(j), v);
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push(i, i, 1.0 + s);
    }
    coo.to_csr().symmetrized_pattern()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Any random system, any (small) grid shape, both 3D algorithms:
    /// distributed solutions must match the sequential reference.
    #[test]
    fn distributed_solves_match_reference(
        n in 24usize..90,
        extra in 10usize..80,
        seed in 0u64..1000,
        px in 1usize..4,
        py in 1usize..4,
        logpz in 0u32..3,
        baseline in proptest::bool::ANY,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(n, 1);
        let want = f.solve(&b, 1);
        let cfg = SolverConfig {
            px, py, pz,
            nrhs: 1,
            algorithm: if baseline { Algorithm::Baseline3d } else { Algorithm::New3d },
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: seed,
        };
        let out = solve_distributed(&f, &b, &cfg);
        prop_assert!(sparse::max_abs_diff(&out.x, &want) < 1e-9);
        prop_assert!(sparse::rel_residual_inf(&a, &out.x, &b, 1) < 1e-9);
    }

    /// The GPU execution model must compute the same numbers as the CPU
    /// path (only its virtual timing differs).
    #[test]
    fn gpu_numerics_equal_cpu(
        n in 24usize..70,
        extra in 10usize..50,
        seed in 0u64..1000,
        px in 1usize..4,
        logpz in 0u32..3,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(n, 2);
        let mk = |arch| SolverConfig {
            px, py: 1, pz,
            nrhs: 2,
            algorithm: Algorithm::New3d,
            arch,
            machine: MachineModel::perlmutter_gpu(),
            chaos_seed: 0,
        };
        let cpu = solve_distributed(&f, &b, &mk(Arch::Cpu));
        let gpu = solve_distributed(&f, &b, &mk(Arch::Gpu));
        prop_assert!(sparse::max_abs_diff(&cpu.x, &gpu.x) < 1e-10);
    }

    /// Nested dissection on random graphs: valid permutation, separators
    /// disconnect, spans nest.
    #[test]
    fn nested_dissection_invariants(
        n in 10usize..150,
        extra in 5usize..120,
        seed in 0u64..1000,
        forced in 0usize..3,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let g = ordering::Graph::from_csr_pattern(&a);
        let nd = ordering::nd::nested_dissection(&g, &ordering::NdOptions {
            forced_depth: forced,
            ..Default::default()
        });
        // Permutation validity.
        let mut seen = vec![false; n];
        for &v in &nd.perm {
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
        // Separator property: children spans never share an edge.
        let mut newidx = vec![0usize; n];
        for (new, &old) in nd.perm.iter().enumerate() {
            newidx[old] = new;
        }
        for node in &nd.tree.nodes {
            if let Some((l, r)) = node.children {
                let ls = nd.tree.nodes[l].span.clone();
                let rs = nd.tree.nodes[r].span.clone();
                for old in 0..n {
                    if !ls.contains(&newidx[old]) { continue; }
                    for &w in g.neighbors(old) {
                        prop_assert!(!rs.contains(&newidx[w as usize]));
                    }
                }
            }
        }
        // Layout covers all columns exactly once.
        let layout = nd.tree.layout(forced);
        let total: usize = layout.iter().map(|t| t.cols.len()).sum();
        prop_assert_eq!(total, n);
    }

    /// The symbolic pattern contains A and every solve-relevant block; the
    /// numeric factorization then reproduces A = L·U through the reference
    /// solve with small residual.
    #[test]
    fn factorization_residual(
        n in 20usize..100,
        extra in 10usize..90,
        seed in 0u64..1000,
        nrhs in 1usize..4,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let f = factorize(&a, 1, &SymbolicOptions::default()).unwrap();
        let b = gen::standard_rhs(n, nrhs);
        let x = f.solve(&b, nrhs);
        prop_assert!(sparse::rel_residual_inf(&a, &x, &b, nrhs) < 1e-9);
    }

    /// Compiled-schedule execution is layout-complete: for a fixed world
    /// of P = 8 ranks, *every* (Px, Py, Pz) factorization with power-of-two
    /// Pz must reproduce the sequential reference — on the CPU path and on
    /// the GPU execution model alike. All ten layouts interpret schedule
    /// IRs compiled by the same `Schedule::compile`, so this sweeps each
    /// degenerate corner (pure-2D Pz = 1, pure-Z 1x1x8, single-column
    /// Px = 1, single-row Py = 1) per random matrix.
    #[test]
    fn all_p8_layouts_match_reference(
        n in 24usize..56,
        extra in 10usize..40,
        seed in 0u64..1000,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let b = gen::standard_rhs(n, 1);
        for logpz in 0u32..4 {
            let pz = 1usize << logpz;
            let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
            let want = f.solve(&b, 1);
            let grid = 8 / pz;
            for px in 1..=grid {
                if !grid.is_multiple_of(px) {
                    continue;
                }
                let py = grid / px;
                for arch in [Arch::Cpu, Arch::Gpu] {
                    let cfg = SolverConfig {
                        px, py, pz,
                        nrhs: 1,
                        algorithm: Algorithm::New3d,
                        arch,
                        machine: MachineModel::perlmutter_gpu(),
                        chaos_seed: seed,
                    };
                    let out = solve_distributed(&f, &b, &cfg);
                    let err = sparse::max_abs_diff(&out.x, &want);
                    prop_assert!(
                        err < 1e-9,
                        "layout {px}x{py}x{pz} ({arch:?}) diverged: max |dx| = {err:e}"
                    );
                }
            }
        }
    }

    /// The schedule IR survives serialization: for random systems and grid
    /// shapes, every compiled variant round-trips through JSON to an
    /// identical `Schedule` (the IR is pure data — no closures, no
    /// pointers into the plan).
    #[test]
    fn schedule_serde_roundtrip_is_identity(
        n in 24usize..70,
        extra in 10usize..60,
        seed in 0u64..1000,
        px in 1usize..4,
        py in 1usize..3,
        logpz in 0u32..3,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Plan::new(Arc::clone(&f), px, py, pz);
        for key in [
            ScheduleKey { baseline: true, tree_comm: false },
            ScheduleKey { baseline: false, tree_comm: false },
            ScheduleKey { baseline: false, tree_comm: true },
        ] {
            let s = plan.schedule(key);
            let json = serde_json::to_string(&*s).unwrap();
            let back: Schedule = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&*s, &back);
        }
    }

    /// Simulator allreduce (binomial) equals the dense sum for any size.
    #[test]
    fn simulator_allreduce_sums(p in 1usize..12, len in 1usize..20) {
        let rep = simgrid::run(
            p,
            MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
            &simgrid::ClusterOptions::default(),
            move |c| {
                let mut v: Vec<f64> = (0..len).map(|k| (c.rank() * 31 + k) as f64).collect();
                c.allreduce_sum(&mut v, Category::ZComm);
                v
            },
        );
        for k in 0..len {
            let want: f64 = (0..p).map(|r| (r * 31 + k) as f64).sum();
            for r in &rep.results {
                prop_assert_eq!(r[k], want);
            }
        }
    }
}
