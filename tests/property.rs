//! Property-based tests (proptest) on the core invariants: random sparse
//! systems, random grid shapes, and the building blocks (nested dissection,
//! sparse allreduce semantics, block-cyclic coverage).

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sptrsv::schedule::{
    run_pass, PassEngine, PassSched, RecvEvent, RowSched, Schedule, ScheduleKey,
};
use sptrsv::Plan;
use sptrsv_repro::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A random structurally symmetric, strictly diagonally dominant matrix.
fn random_sym_dd(n: usize, extra_edges: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = sparse::CooMatrix::new(n);
    let mut rowsum = vec![0.0f64; n];
    let push_sym =
        |coo: &mut sparse::CooMatrix, rowsum: &mut Vec<f64>, i: usize, j: usize, v: f64| {
            coo.push(i, j, v);
            coo.push(j, i, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        };
    // Chain for irreducibility.
    for i in 0..n - 1 {
        let v = -(0.2 + rng.gen::<f64>());
        push_sym(&mut coo, &mut rowsum, i, i + 1, v);
    }
    for _ in 0..extra_edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let v = -(0.1 + rng.gen::<f64>());
        push_sym(&mut coo, &mut rowsum, i.min(j), i.max(j), v);
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push(i, i, 1.0 + s);
    }
    coo.to_csr().symmetrized_pattern()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Any random system, any (small) grid shape, both 3D algorithms:
    /// distributed solutions must match the sequential reference.
    #[test]
    fn distributed_solves_match_reference(
        n in 24usize..90,
        extra in 10usize..80,
        seed in 0u64..1000,
        px in 1usize..4,
        py in 1usize..4,
        logpz in 0u32..3,
        baseline in proptest::bool::ANY,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(n, 1);
        let want = f.solve(&b, 1);
        let cfg = SolverConfig {
            px, py, pz,
            nrhs: 1,
            algorithm: if baseline { Algorithm::Baseline3d } else { Algorithm::New3d },
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: seed,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        prop_assert!(sparse::max_abs_diff(&out.x, &want) < 1e-9);
        prop_assert!(sparse::rel_residual_inf(&a, &out.x, &b, 1) < 1e-9);
    }

    /// The GPU execution model must compute the same numbers as the CPU
    /// path (only its virtual timing differs).
    #[test]
    fn gpu_numerics_equal_cpu(
        n in 24usize..70,
        extra in 10usize..50,
        seed in 0u64..1000,
        px in 1usize..4,
        logpz in 0u32..3,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(n, 2);
        let mk = |arch| SolverConfig {
            px, py: 1, pz,
            nrhs: 2,
            algorithm: Algorithm::New3d,
            arch,
            machine: MachineModel::perlmutter_gpu(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let cpu = solve_distributed(&f, &b, &mk(Arch::Cpu));
        let gpu = solve_distributed(&f, &b, &mk(Arch::Gpu));
        prop_assert!(sparse::max_abs_diff(&cpu.x, &gpu.x) < 1e-10);
    }

    /// Nested dissection on random graphs: valid permutation, separators
    /// disconnect, spans nest.
    #[test]
    fn nested_dissection_invariants(
        n in 10usize..150,
        extra in 5usize..120,
        seed in 0u64..1000,
        forced in 0usize..3,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let g = ordering::Graph::from_csr_pattern(&a);
        let nd = ordering::nd::nested_dissection(&g, &ordering::NdOptions {
            forced_depth: forced,
            ..Default::default()
        });
        // Permutation validity.
        let mut seen = vec![false; n];
        for &v in &nd.perm {
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
        // Separator property: children spans never share an edge.
        let mut newidx = vec![0usize; n];
        for (new, &old) in nd.perm.iter().enumerate() {
            newidx[old] = new;
        }
        for node in &nd.tree.nodes {
            if let Some((l, r)) = node.children {
                let ls = nd.tree.nodes[l].span.clone();
                let rs = nd.tree.nodes[r].span.clone();
                for old in 0..n {
                    if !ls.contains(&newidx[old]) { continue; }
                    for &w in g.neighbors(old) {
                        prop_assert!(!rs.contains(&newidx[w as usize]));
                    }
                }
            }
        }
        // Layout covers all columns exactly once.
        let layout = nd.tree.layout(forced);
        let total: usize = layout.iter().map(|t| t.cols.len()).sum();
        prop_assert_eq!(total, n);
    }

    /// The symbolic pattern contains A and every solve-relevant block; the
    /// numeric factorization then reproduces A = L·U through the reference
    /// solve with small residual.
    #[test]
    fn factorization_residual(
        n in 20usize..100,
        extra in 10usize..90,
        seed in 0u64..1000,
        nrhs in 1usize..4,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let f = factorize(&a, 1, &SymbolicOptions::default()).unwrap();
        let b = gen::standard_rhs(n, nrhs);
        let x = f.solve(&b, nrhs);
        prop_assert!(sparse::rel_residual_inf(&a, &x, &b, nrhs) < 1e-9);
    }

    /// Compiled-schedule execution is layout-complete: for a fixed world
    /// of P = 8 ranks, *every* (Px, Py, Pz) factorization with power-of-two
    /// Pz must reproduce the sequential reference — on the CPU path and on
    /// the GPU execution model alike. All ten layouts interpret schedule
    /// IRs compiled by the same `Schedule::compile`, so this sweeps each
    /// degenerate corner (pure-2D Pz = 1, pure-Z 1x1x8, single-column
    /// Px = 1, single-row Py = 1) per random matrix.
    #[test]
    fn all_p8_layouts_match_reference(
        n in 24usize..56,
        extra in 10usize..40,
        seed in 0u64..1000,
    ) {
        let a = random_sym_dd(n, extra, seed);
        let b = gen::standard_rhs(n, 1);
        for logpz in 0u32..4 {
            let pz = 1usize << logpz;
            let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
            let want = f.solve(&b, 1);
            let grid = 8 / pz;
            for px in 1..=grid {
                if !grid.is_multiple_of(px) {
                    continue;
                }
                let py = grid / px;
                for arch in [Arch::Cpu, Arch::Gpu] {
                    let cfg = SolverConfig {
                        px, py, pz,
                        nrhs: 1,
                        algorithm: Algorithm::New3d,
                        arch,
                        machine: MachineModel::perlmutter_gpu(),
                        chaos_seed: seed,
                        fault: Default::default(),
                        backend: Default::default(),
                        executor: Default::default(),
                    };
                    let out = solve_distributed(&f, &b, &cfg);
                    let err = sparse::max_abs_diff(&out.x, &want);
                    prop_assert!(
                        err < 1e-9,
                        "layout {px}x{py}x{pz} ({arch:?}) diverged: max |dx| = {err:e}"
                    );
                }
            }
        }
    }

    /// The schedule IR survives serialization: for random systems and grid
    /// shapes, every compiled variant round-trips through JSON to an
    /// identical `Schedule` (the IR is pure data — no closures, no
    /// pointers into the plan).
    #[test]
    fn schedule_serde_roundtrip_is_identity(
        n in 24usize..70,
        extra in 10usize..60,
        seed in 0u64..1000,
        px in 1usize..4,
        py in 1usize..3,
        logpz in 0u32..3,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Plan::new(Arc::clone(&f), px, py, pz);
        for key in [
            ScheduleKey { baseline: true, tree_comm: false },
            ScheduleKey { baseline: false, tree_comm: false },
            ScheduleKey { baseline: false, tree_comm: true },
        ] {
            let s = plan.schedule(key);
            let json = serde_json::to_string(&*s).unwrap();
            let back: Schedule = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&*s, &back);
        }
    }

    /// The paper's sparse allreduce must sum correctly even when every
    /// message may be duplicated and the any-source queue is drained in an
    /// adversarial order — for arbitrary (Pz, nrhs).
    #[test]
    fn sparse_allreduce_survives_duplicates_and_reorder(
        logpz in 0u32..4,
        nrhs in 1usize..4,
        seed in 1u64..10_000,
        reorder_idx in 0usize..4,
    ) {
        let pz = 1usize << logpz;
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), 1, 1, pz));
        let sched = plan.schedule(ScheduleKey { baseline: false, tree_comm: true });
        let fault = FaultPlan {
            seed,
            reorder: [
                Reorder::EarliestArrival,
                Reorder::Random,
                Reorder::NewestQueued,
                Reorder::LatestArrival,
            ][reorder_idx],
            jitter_max: 20e-6,
            duplicate_prob: 0.5,
            ..Default::default()
        };
        let opts = simgrid::ClusterOptions { fault: fault.clone(), ..Default::default() };
        let plan2 = Arc::clone(&plan);
        let rep = simgrid::run(pz, MachineModel::cori_haswell(), &opts, move |world| {
            let plan = &plan2;
            let z = world.rank();
            let rs = &sched.ranks[plan.rank_of(0, 0, z)];
            let _grid = world.split(z, 0);
            let zcomm = world.split(0, z);
            // Synthetic partials: supernode k contributes (k + z·1000) per
            // entry on its replicating grids (exact in f64, so the reduced
            // sums admit equality checks).
            let sym = plan.fact.lu.sym();
            let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
            for &k in &plan.grids[z].supers {
                let w = sym.sup_width(k as usize) * nrhs;
                y_vals.insert(k, vec![k as f64 + z as f64 * 1000.0; w]);
            }
            sptrsv::allreduce::sparse_allreduce(plan, &zcomm, &rs.zsteps, nrhs, &mut y_vals);
            (z, y_vals)
        });
        for (z, y_vals) in rep.results {
            for (&k, v) in &y_vals {
                let node = plan.sup_node[k as usize] as usize;
                let zs: Vec<usize> = (0..pz)
                    .filter(|&g| plan.grids[g].path.contains(&node))
                    .collect();
                let want: f64 = zs.iter().map(|&g| k as f64 + g as f64 * 1000.0).sum();
                for &got in v {
                    prop_assert!(
                        got == want,
                        "sup {} grid {}: got {} want {} under fault plan {:?}",
                        k, z, got, want, fault
                    );
                }
            }
        }
    }

    /// The pass interpreter's duplicate detection must never decrement an
    /// `fmod` counter twice for one logical message: for arbitrary trigger
    /// rows, source sets, duplication factors, and delivery orders, every
    /// `(row, src)` contribution is applied exactly once and every row
    /// still completes exactly once.
    #[test]
    fn dedup_never_double_decrements_fmod(
        nrows in 1usize..6,
        srcs_per_row in 1u32..4,
        extra_copies in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let rows: Vec<RowSched> = (0..nrows as u32)
            .map(|i| RowSched {
                sup: i * 3,
                fmod0: srcs_per_row,
                parent: if i % 2 == 0 { None } else { Some(0) },
                children: vec![],
            })
            .collect();
        // One logical partial per (row, src), plus adversarial duplicates,
        // in a random delivery order.
        let mut script: Vec<RecvEvent> = Vec::new();
        let mut expected = 0u32;
        for r in &rows {
            for s in 0..srcs_per_row {
                let ev = RecvEvent {
                    vector: false,
                    sup: r.sup,
                    src: 10 + s,
                    payload: vec![r.sup as f64].into(),
                };
                expected += 1;
                for _ in 0..=extra_copies {
                    script.push(ev.clone());
                }
            }
        }
        script.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        let pass = PassSched {
            epoch: 0x5 << 48,
            lower: true,
            expected,
            cols: vec![],
            rows: rows.clone(),
            ext_roots: vec![],
            scatter: vec![],
            // All rows are mutually independent here: one level.
            level_order: (0..rows.len() as u32).collect(),
            level_ptr: vec![0, rows.len() as u32],
        };

        #[derive(Default)]
        struct CountingEngine {
            script: Vec<RecvEvent>,
            next: usize,
            partial_adds: HashMap<(u32, u32), u32>,
            diag_solved: Vec<u32>,
            partials_sent: Vec<u32>,
        }
        impl PassEngine for CountingEngine {
            fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]> {
                self.diag_solved.push(row.sup);
                vec![0.0].into()
            }
            fn store_solved(&mut self, _sup: u32, _v: &[f64]) {}
            fn solved(&self, _sup: u32) -> Arc<[f64]> {
                vec![].into()
            }
            fn forward(&mut self, _col: &sptrsv::schedule::ColSched, _v: &Arc<[f64]>) {}
            fn send_partial(&mut self, row: &RowSched, _parent: u32) {
                self.partials_sent.push(row.sup);
            }
            fn apply_column(
                &mut self,
                _col: &sptrsv::schedule::ColSched,
                _v: &[f64],
                _scatter: &[u32],
            ) {
            }
            fn add_partial(&mut self, row: &RowSched, src: u32, _payload: &[f64]) {
                *self.partial_adds.entry((row.sup, src)).or_insert(0) += 1;
            }
            fn recv(&mut self, _epoch: u64) -> RecvEvent {
                let ev = self.script[self.next].clone();
                self.next += 1;
                ev
            }
        }

        let mut eng = CountingEngine { script, ..Default::default() };
        run_pass(&mut eng, &pass); // panics on unmet deps or excess partials
        for r in &rows {
            for s in 0..srcs_per_row {
                prop_assert!(
                    eng.partial_adds.get(&(r.sup, 10 + s)).copied() == Some(1),
                    "contribution (sup {}, src {}) applied {:?} times, want exactly 1",
                    r.sup, 10 + s, eng.partial_adds.get(&(r.sup, 10 + s))
                );
            }
            if r.parent.is_none() {
                prop_assert_eq!(eng.diag_solved.iter().filter(|&&s| s == r.sup).count(), 1);
            } else {
                prop_assert_eq!(eng.partials_sent.iter().filter(|&&s| s == r.sup).count(), 1);
            }
        }
    }

    /// Simulator allreduce (binomial) equals the dense sum for any size.
    #[test]
    fn simulator_allreduce_sums(p in 1usize..12, len in 1usize..20) {
        let rep = simgrid::run(
            p,
            MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
            &simgrid::ClusterOptions::default(),
            move |c| {
                let mut v: Vec<f64> = (0..len).map(|k| (c.rank() * 31 + k) as f64).collect();
                c.allreduce_sum(&mut v, Category::ZComm);
                v
            },
        );
        for k in 0..len {
            let want: f64 = (0..p).map(|r| (r * 31 + k) as f64).sum();
            for r in &rep.results {
                prop_assert_eq!(r[k], want);
            }
        }
    }
}

/// Shared random-block generator for the kernel bit-identity properties:
/// one off-diagonal block shape (panel dims, row-offset list, zero masks)
/// drawn from a seeded RNG so failures replay exactly.
struct KernelCase {
    /// Row offsets of the block's rows within the target supernode
    /// (sorted, unique, in `0..wi`).
    offsets: Vec<usize>,
    /// Global row ids as the symbolic structure stores them.
    rows: Vec<u32>,
    istart: usize,
    lo: usize,
    hi: usize,
    r: usize,
    panel_l: Vec<f64>,
    panel_u: Vec<f64>,
    y: Vec<f64>,
    x: Vec<f64>,
    acc_l: Vec<f64>,
    acc_u: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn random_kernel_case(
    w: usize,
    wi: usize,
    lo: usize,
    tail: usize,
    nrhs: usize,
    contiguous: bool,
    rng: &mut ChaCha8Rng,
) -> KernelCase {
    let len = rng.gen_range(1..=wi);
    let offsets: Vec<usize> = if contiguous {
        let start = rng.gen_range(0..=wi - len);
        (start..start + len).collect()
    } else {
        let mut all: Vec<usize> = (0..wi).collect();
        all.shuffle(rng);
        let mut picked = all[..len].to_vec();
        picked.sort_unstable();
        picked
    };
    let istart = 100;
    let r = lo + len + tail;
    let mut rows = vec![0u32; r];
    for (q, &off) in offsets.iter().enumerate() {
        rows[lo + q] = (istart + off) as u32;
    }
    // Sprinkle exact zeros to exercise the skip-on-zero fallback paths.
    let masked = |rng: &mut ChaCha8Rng, n: usize, p: f64| -> Vec<f64> {
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < p {
                    0.0
                } else {
                    rng.gen::<f64>() * 4.0 - 2.0
                }
            })
            .collect()
    };
    KernelCase {
        istart,
        lo,
        hi: lo + len,
        r,
        panel_l: masked(rng, r * w, 0.25),
        panel_u: masked(rng, r * w, 0.25),
        y: masked(rng, w * nrhs, 0.35),
        x: masked(rng, wi * nrhs, 0.35),
        acc_l: masked(rng, wi * nrhs, 0.0),
        acc_u: masked(rng, w * nrhs, 0.0),
        offsets,
        rows,
    }
}

/// Mirror of the schedule compiler's dense-run detection: a block whose
/// offsets are one contiguous run gets the `Dense` fast path, anything
/// else gets the precompiled scatter list.
fn targets_of<'a>(offsets: &[usize], scatter: &'a mut Vec<u32>) -> sptrsv::kernels::Targets<'a> {
    let dense = offsets.windows(2).all(|p| p[1] == p[0] + 1);
    if dense {
        sptrsv::kernels::Targets::Dense(offsets[0])
    } else {
        scatter.clear();
        scatter.extend(offsets.iter().map(|&o| o as u32));
        sptrsv::kernels::Targets::Scatter(&scatter[..])
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// The register-blocked scatter kernels must be **bit-identical** to
    /// the scalar reference loops for every supernode shape, every nrhs
    /// remainder class, both Dense and Scatter addressing, and in the
    /// presence of exact-zero values (the skip-on-zero fast path). The
    /// chaos-conformance suite relies on this equivalence being exact,
    /// not merely within rounding.
    #[test]
    fn blocked_apply_kernels_bit_identical_to_reference(
        w in 1usize..9,
        wi in 1usize..9,
        lo in 0usize..4,
        tail in 0usize..3,
        nrhs_i in 0usize..6,
        seed in 0u64..1_000_000,
        contiguous in proptest::bool::ANY,
    ) {
        let nrhs = [1usize, 2, 3, 4, 7, 8][nrhs_i];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = random_kernel_case(w, wi, lo, tail, nrhs, contiguous, &mut rng);
        let mut scatter = Vec::new();

        // L: lsum(I) += L(I,K) · y(K), scatter into the target rows.
        let mut got = c.acc_l.clone();
        let mut want = c.acc_l.clone();
        let tg = targets_of(&c.offsets, &mut scatter);
        let fb = sptrsv::kernels::apply_l(
            &c.panel_l, c.r, c.lo, c.hi, tg, &c.y, w, &mut got, wi, nrhs,
        );
        let fr = sptrsv::kernels::reference::apply_l(
            &c.panel_l, c.r, &c.rows, c.istart, c.lo, c.hi, &c.y, w, &mut want, wi, nrhs,
        );
        prop_assert!(fb == fr, "apply_l flop counts differ: {} vs {}", fb, fr);
        for (i, (g, e)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                g.to_bits() == e.to_bits(),
                "apply_l drifts at {} (blocked {} vs reference {})", i, g, e,
            );
        }

        // U: usum(K) += U(K,J) · x(J), gather from the source rows.
        let mut got = c.acc_u.clone();
        let mut want = c.acc_u.clone();
        let tg = targets_of(&c.offsets, &mut scatter);
        let fb = sptrsv::kernels::apply_u(
            &c.panel_u, w, c.lo, c.hi, tg, &c.x, wi, &mut got, nrhs,
        );
        let fr = sptrsv::kernels::reference::apply_u(
            &c.panel_u, w, &c.rows, c.istart, c.lo, c.hi, &c.x, wi, &mut want, nrhs,
        );
        prop_assert!(fb == fr, "apply_u flop counts differ: {} vs {}", fb, fr);
        for (i, (g, e)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                g.to_bits() == e.to_bits(),
                "apply_u drifts at {} (blocked {} vs reference {})", i, g, e,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Level-set construction invariants and the level executor end to end.
// ---------------------------------------------------------------------------

/// Longest dependency path lengths (in nodes) of a strictly-lower CSR
/// pattern — the reference depth the unbatched level assignment must hit.
fn dag_depth(row_ptr: &[usize], col_idx: &[usize]) -> u32 {
    let n = row_ptr.len() - 1;
    let mut depth = vec![1u32; n];
    let mut max = if n == 0 { 0 } else { 1 };
    for i in 0..n {
        for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
            depth[i] = depth[i].max(depth[j] + 1);
        }
        max = max.max(depth[i]);
    }
    max
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Unbatched level sets on a random lower-triangular factor pattern:
    /// every dependency sits on a strictly earlier level, sources sit on
    /// level zero, and the level count equals the DAG depth (no level
    /// assignment can do better, and the greedy construction never does
    /// worse).
    #[test]
    fn level_sets_invariants_on_random_lower(
        n in 1usize..120,
        max_deps in 0usize..8,
        seed in 0u64..1000,
    ) {
        let (row_ptr, col_idx) = gen::random_lower_csr(n, max_deps, seed);
        let ls = ordering::levels::level_sets_csr(
            &row_ptr, &col_idx, ordering::levels::ChainPolicy::none(),
        );
        prop_assert_eq!(ls.level_of.len(), n);
        prop_assert_eq!(ls.n_levels, dag_depth(&row_ptr, &col_idx));
        for i in 0..n {
            let deps = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            if deps.is_empty() {
                prop_assert!(ls.level_of[i] == 0, "source row {} off level 0", i);
            }
            let maxdep = deps.iter().map(|&j| ls.level_of[j] + 1).max().unwrap_or(0);
            // Greedy: exactly one past the deepest dependency.
            prop_assert!(ls.level_of[i] == maxdep, "row {} mis-leveled", i);
            prop_assert!(ls.level_of[i] < ls.n_levels);
        }
    }

    /// Chain batching may only merge single-successor chains: dependencies
    /// never land on a *later* level, the level count never grows, and it
    /// stays at least `ceil(depth / batch_width)` (a chain of `k` nodes
    /// compresses at most `batch_width`-fold).
    #[test]
    fn chain_batching_compresses_soundly(
        n in 1usize..120,
        max_deps in 0usize..6,
        seed in 0u64..1000,
        batch in 2u32..9,
    ) {
        let (row_ptr, col_idx) = gen::random_lower_csr(n, max_deps, seed);
        let pure = ordering::levels::level_sets_csr(
            &row_ptr, &col_idx, ordering::levels::ChainPolicy::none(),
        );
        let batched = ordering::levels::level_sets_csr(
            &row_ptr, &col_idx, ordering::levels::ChainPolicy { batch_width: batch },
        );
        prop_assert!(batched.n_levels <= pure.n_levels);
        prop_assert!(batched.n_levels >= pure.n_levels.div_ceil(batch));
        for i in 0..n {
            for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                // Within-level chains keep ascending order, so firing a
                // level in elimination order still respects every edge.
                prop_assert!(
                    batched.level_of[j] <= batched.level_of[i],
                    "dep {} (L{}) later than row {} (L{})",
                    j, batched.level_of[j], i, batched.level_of[i],
                );
            }
        }
    }

    /// The level executor, end to end on random systems and grids: its
    /// distributed solution must be bit-identical to the tree executor's
    /// and match the sequential reference solve.
    #[test]
    fn level_executor_matches_tree_and_reference(
        n in 24usize..90,
        extra in 10usize..80,
        seed in 0u64..1000,
        px in 1usize..4,
        py in 1usize..3,
        logpz in 0u32..3,
        baseline in proptest::bool::ANY,
    ) {
        let pz = 1usize << logpz;
        let a = random_sym_dd(n, extra, seed);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(n, 1);
        let want = f.solve(&b, 1);
        let mk = |executor| SolverConfig {
            px, py, pz,
            nrhs: 1,
            algorithm: if baseline { Algorithm::Baseline3d } else { Algorithm::New3d },
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor,
        };
        let tree = solve_distributed(&f, &b, &mk(ExecutorKind::Tree));
        let level = solve_distributed(&f, &b, &mk(ExecutorKind::Level));
        prop_assert!(sparse::max_abs_diff(&level.x, &want) < 1e-9);
        for (i, (t, l)) in tree.x.iter().zip(&level.x).enumerate() {
            prop_assert!(
                t.to_bits() == l.to_bits(),
                "x[{}] differs across executors: tree {:e}, level {:e}", i, t, l,
            );
        }
    }
}
