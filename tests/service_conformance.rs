//! Serving-layer conformance: a [`SolverService`] must be a transparent
//! batcher.  Whatever mixture of requests arrives — any widths, any
//! interleaving, any batching knobs — each demuxed result must be
//! **bit-identical** to solving that request alone on the same plan
//! (DESIGN.md §13).  The underlying invariant is that the register-blocked
//! kernels compute every RHS column with the same operation order at any
//! `nrhs`, so batching changes throughput, never bits.
//!
//! The suite honors the CI backend/executor matrix
//! (`SPTRSV_TEST_BACKEND`, `SPTRSV_TEST_EXECUTOR`); when neither variable
//! is set it sweeps all four backend × executor combinations itself.

mod common;

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sptrsv_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const CPU_ALGS: [Algorithm; 4] = [
    Algorithm::New3d,
    Algorithm::New3dFlat,
    Algorithm::New3dNaiveAllreduce,
    Algorithm::Baseline3d,
];

/// The backend × executor combinations under test: the single combination
/// pinned by the CI matrix when the env vars are set, the full sweep
/// otherwise.
fn combos() -> Vec<(Backend, ExecutorKind)> {
    let pinned = std::env::var("SPTRSV_TEST_BACKEND").is_ok()
        || std::env::var("SPTRSV_TEST_EXECUTOR").is_ok();
    if pinned {
        vec![(common::backend(), common::executor())]
    } else {
        vec![
            (Backend::Sim, ExecutorKind::Tree),
            (Backend::Sim, ExecutorKind::Level),
            (Backend::Native, ExecutorKind::Tree),
            (Backend::Native, ExecutorKind::Level),
        ]
    }
}

/// One factorization shared by every case in this file.
fn fact() -> Arc<lufactor::Factorized> {
    static FACT: OnceLock<Arc<lufactor::Factorized>> = OnceLock::new();
    FACT.get_or_init(|| {
        let a = sparse::gen::poisson2d_9pt(12, 12);
        Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap())
    })
    .clone()
}

fn solver(alg: Algorithm, backend: Backend, executor: ExecutorKind) -> Solver3d {
    let cfg = SolverConfig {
        px: 2,
        py: 1,
        pz: 2,
        nrhs: 1,
        algorithm: alg,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend,
        executor,
    };
    Solver3d::new(fact(), cfg)
}

/// Run `widths` as service requests (submitted and collected in the given
/// shuffled orders) and assert every demuxed result is bit-identical to
/// the standalone solve of the same request.
fn check_mix(
    alg: Algorithm,
    backend: Backend,
    executor: ExecutorKind,
    widths: &[usize],
    svc_cfg: ServiceConfig,
    order_seed: u64,
) {
    let s = solver(alg, backend, executor);
    let n = fact().pa.nrows();
    let total: usize = widths.iter().sum();
    let b = sparse::gen::standard_rhs(n, total);

    // Column offset of each request's RHS within `b`.
    let offsets: Vec<usize> = widths
        .iter()
        .scan(0, |acc, w| {
            let o = *acc;
            *acc += w;
            Some(o)
        })
        .collect();

    // References: each request solved alone, width as submitted.
    let refs: Vec<Vec<f64>> = widths
        .iter()
        .zip(&offsets)
        .map(|(&w, &o)| s.solve(&b[o * n..(o + w) * n], w).x)
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(order_seed);
    let mut submit_order: Vec<usize> = (0..widths.len()).collect();
    submit_order.shuffle(&mut rng);
    let mut collect_order = submit_order.clone();
    collect_order.shuffle(&mut rng);

    let svc = SolverService::start(s, svc_cfg);
    let mut tickets: Vec<Option<sptrsv::Ticket>> = (0..widths.len()).map(|_| None).collect();
    for &r in &submit_order {
        let (w, o) = (widths[r], offsets[r]);
        tickets[r] = Some(svc.submit(&b[o * n..(o + w) * n], w).unwrap());
    }
    for &r in &collect_order {
        let x = tickets[r].take().unwrap().wait();
        assert_eq!(
            x, refs[r],
            "{alg:?}/{backend:?}/{executor:?}: request {r} (width {}) \
             demuxed differently from its standalone solve",
            widths[r],
        );
    }
    svc.shutdown();
}

/// Deterministic sweep: every CPU algorithm, on every backend × executor
/// combination in play, through a fixed mixed-width request schedule.
#[test]
fn every_algorithm_demuxes_bit_identically() {
    for (backend, executor) in combos() {
        for alg in CPU_ALGS {
            check_mix(
                alg,
                backend,
                executor,
                &[1, 3, 2, 4, 1],
                ServiceConfig {
                    batch: BatchPolicy {
                        max_batch: 6,
                        max_wait: Duration::from_millis(1),
                    },
                    queue_capacity: 16,
                    max_request_width: 4,
                    on_full: QueueFullPolicy::Block,
                },
                alg as u64,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Random request mixes: random widths (1–4), random submit and
    /// collect interleavings, random batching knobs, random algorithm.
    /// Demuxed columns are bit-identical to individual solves.
    #[test]
    fn random_mixes_demux_bit_identically(
        alg_ix in 0usize..4,
        widths in proptest::collection::vec(1usize..=4, 3..8),
        max_batch in 4usize..=8,
        wait_ix in 0usize..3,
        order_seed in 0u64..1_000_000,
    ) {
        for (backend, executor) in combos() {
            check_mix(
                CPU_ALGS[alg_ix],
                backend,
                executor,
                &widths,
                ServiceConfig {
                    batch: BatchPolicy {
                        max_batch,
                        max_wait: Duration::from_micros([0, 200, 2_000][wait_ix]),
                    },
                    queue_capacity: 16,
                    max_request_width: 4,
                    on_full: QueueFullPolicy::Block,
                },
                order_seed,
            );
        }
    }
}
