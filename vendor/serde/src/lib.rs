//! Offline stand-in for `serde`. Instead of serde's visitor architecture,
//! this exposes a small value-tree model: `Serialize` renders a type into
//! a [`Value`] and `Deserialize` rebuilds it from one. The companion
//! `serde_derive` stand-in generates both impls for named-field structs
//! and unit-variant enums — the only shapes this workspace derives — and
//! `serde_json` maps [`Value`] to and from JSON text.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value tree (the JSON data model, order-preserving).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved so serialized output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an `Object` by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a message string.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can deserialize untyped
// documents (e.g. `serde_json::from_str::<Value>`) and walk them via `get`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- Serialize impls -----------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => {
                        let out = *i as $t;
                        if out as i64 == *i {
                            Ok(out)
                        } else {
                            Err(Error::msg(format!(
                                "integer {i} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let want = [$($idx),+].len();
                        if items.len() != want {
                            return Err(Error::msg(format!(
                                "expected tuple of length {want}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}
ser_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_tree_roundtrips() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)].to_value();
        let back = Vec::<(usize, f64)>::from_value(&v).unwrap();
        assert_eq!(back, vec![(1, 2.5), (3, 4.0)]);

        let arr: [u64; 3] = [7, 8, 9];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);

        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()).unwrap(),
            Some(5)
        );
    }
}
