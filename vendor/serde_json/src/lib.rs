//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! tree to JSON text (compact or pretty) and parses JSON text back.

pub use serde::Value;

use serde::{Deserialize, Error, Serialize};

/// Serialize to the value tree (mirrors `serde_json::to_value`).
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a `T` from a value tree (mirrors `serde_json::from_value`).
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// --- Writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                level,
                '[',
                ']',
                |out, item, lvl| write_value(out, item, indent, lvl),
            );
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                level,
                '{',
                '}',
                |out, (k, item), lvl| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, lvl);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (idx, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if idx + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    Error::msg(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(-3), Value::Float(2.5e-11)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [
            to_string(&ValueWrap(v.clone())).unwrap(),
            to_string_pretty(&ValueWrap(v.clone())).unwrap(),
        ] {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            let back = p.parse_value().unwrap();
            assert_eq!(back, v);
        }
    }

    /// Serialize adapter so tests can feed a raw `Value`.
    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<(u32, f64)> = from_str("[[1, 2.5], [3, 4.0]]").unwrap();
        assert_eq!(xs, vec![(1, 2.5), (3, 4.0)]);
    }
}
