//! Offline stand-in for the subset of `rayon` this workspace uses:
//! `(range | vec).into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is genuinely parallel: items are split into one contiguous chunk
//! per available core and mapped on scoped OS threads, preserving input
//! order in the collected output.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Marker trait mirroring rayon's `ParallelIterator` (methods here are
/// inherent on the concrete types; the trait exists for `use` parity).
pub trait ParallelIterator {}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParallelIterator for ParIter<T> {}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<T, U, F> ParallelIterator for ParMap<T, U, F> {}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, U, F> {
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<U>>,
    {
        C::from(par_map(self.items, &self.f))
    }
}

fn par_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let nthreads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || nthreads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(nthreads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nthreads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_parallel_map_over_range_and_vec() {
        let got: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        let want: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
        let got: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|i: i32| format!("{i}"))
            .collect();
        assert_eq!(got, vec!["1", "2", "3"]);
    }
}
