//! Offline stand-in for `criterion`: the `Criterion`/`Bencher`/group API
//! surface the workspace benches use, backed by a simple wall-clock
//! timer. Each benchmark warms up, picks an iteration count from the
//! warm-up estimate, takes `sample_size` samples, and prints
//! `name  time: [min median max]`.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Substring filter from the command line (cargo bench passes it through).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose iterations per sample so all samples fit the budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / est.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let min = s[0];
        let med = s[s.len() / 2];
        let max = s[s.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(med),
            fmt_time(max)
        );
    }
}

/// Render seconds with criterion-style units.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7), &(), |b, _| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(fmt_time(2.5e-9), "2.50 ns");
    }
}
