//! Offline stand-in for `proptest`: the `proptest!` macro, `Strategy`
//! trait, range/tuple/collection strategies, and `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name and case index), so failures are reproducible. There is
//! no shrinking: a failing case reports its inputs' case number instead.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runner configuration. Only `cases` is consulted; the other fields exist
/// so `.. ProptestConfig::default()` struct-update syntax works.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API parity; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for `case` of the test named `name` (FNV-1a over the name).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h ^ ((case as u64) << 32 | 0x9e37))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod bool {
    //! `proptest::bool::ANY`.
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! `proptest::collection::vec`.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Run one named property test: generate `cases` inputs and panic on the
/// first failing case. Used by the `proptest!` macro expansion.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::new_value(&($strat), rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in -1.0..1.0, b in crate::bool::ANY) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((b as u8) <= 1);
        }

        #[test]
        fn vec_and_map_compose(
            xs in crate::collection::vec((0usize..5, 0u64..7), 0..9)
        ) {
            prop_assert!(xs.len() < 9);
            for (a, b) in xs {
                prop_assert!(a < 5 && b < 7);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let s = (0usize..100).prop_map(|x| x * 2);
        let mut r1 = crate::TestRng::for_case("d", 3);
        let mut r2 = crate::TestRng::for_case("d", 3);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
