//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no syn/quote available offline). It supports exactly the
//! shapes this workspace derives:
//!
//! - structs with named fields (including lifetime/type generics without
//!   `where` clauses),
//! - unit structs,
//! - enums whose variants are all unit variants (discriminants allowed).
//!
//! Anything else produces a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct (possibly with zero fields) or unit struct.
    Struct { fields: Vec<String> },
    /// Enum whose variants are all unit variants.
    UnitEnum { variants: Vec<String> },
}

struct Input {
    name: String,
    /// Raw generic parameters, split on top-level commas (e.g. `["'a", "T"]`).
    generics: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok(item) => generate(&item, mode)
            .parse()
            .expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// --- Parsing -------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde derive stub: expected struct/enum, found {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive stub: expected name, found {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    if kind == "enum" {
        let body = expect_brace(&tokens, &mut i)?;
        let variants = parse_unit_variants(&body)?;
        return Ok(Input {
            name,
            generics,
            shape: Shape::UnitEnum { variants },
        });
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let fields = parse_named_fields(&body)?;
            Ok(Input {
                name,
                generics,
                shape: Shape::Struct { fields },
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
            name,
            generics,
            shape: Shape::Struct { fields: Vec::new() },
        }),
        _ => Err(format!(
            "serde derive stub: tuple structs are not supported (deriving for {name})"
        )),
    }
}

/// Skip any leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` after the type name, returning params split on top-level
/// commas. Leaves `i` after the closing `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *i += 1;
    let mut depth = 0usize;
    let mut params = Vec::new();
    let mut cur = String::new();
    loop {
        let tok = tokens
            .get(*i)
            .ok_or_else(|| "serde derive stub: unterminated generics".to_string())?;
        *i += 1;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => {
                depth -= 1;
                cur.push('>');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if !cur.trim().is_empty() {
                    params.push(cur.trim().to_string());
                }
                return Ok(params);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                params.push(cur.trim().to_string());
                cur.clear();
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Keep lifetimes as a single `'name` token when re-lexed.
                cur.push('\'');
            }
            other => {
                cur.push_str(&other.to_string());
                cur.push(' ');
            }
        }
    }
}

fn expect_brace(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            *i += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("serde derive stub: expected body, found {other:?}")),
    }
}

/// Parse `name: Type, ...` out of a struct body, skipping attributes,
/// visibility, and the type tokens themselves.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive stub: expected field name, found {other:?}"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde derive stub: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_to_top_level_comma(body, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advance past tokens until (and including) the next comma at angle-bracket
/// depth zero, or the end of the token list.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        *i += 1;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive stub: expected variant name, found {other:?}"
                ))
            }
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = body.get(i) {
            return Err(format!(
                "serde derive stub: variant `{name}` carries data; only unit enums are supported"
            ));
        }
        skip_to_top_level_comma(body, &mut i);
        variants.push(name);
    }
    Ok(variants)
}

// --- Code generation -----------------------------------------------------

fn generate(item: &Input, mode: Mode) -> String {
    let name = &item.name;
    let (impl_generics, ty_generics) = render_generics(&item.generics, mode);
    let header = match mode {
        Mode::Serialize => {
            format!("impl{impl_generics} ::serde::Serialize for {name}{ty_generics}")
        }
        Mode::Deserialize => {
            format!("impl{impl_generics} ::serde::Deserialize for {name}{ty_generics}")
        }
    };
    let body = match (&item.shape, mode) {
        (Shape::Struct { fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Value::Object(vec![{pushes}])\
                 }}"
            )
        }
        (Shape::Struct { fields }, Mode::Deserialize) => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                             .ok_or_else(|| ::serde::Error::msg(\
                                 \"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "fn from_value(v: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::Error> {{\
                     ::core::result::Result::Ok({name} {{ {builds} }})\
                 }}"
            )
        }
        (Shape::UnitEnum { variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Value::Str(match self {{ {arms} }}.to_string())\
                 }}"
            )
        }
        (Shape::UnitEnum { variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "fn from_value(v: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::Error> {{\
                     match v {{\
                         ::serde::Value::Str(s) => match s.as_str() {{\
                             {arms}\
                             other => ::core::result::Result::Err(::serde::Error::msg(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\
                         }},\
                         other => ::core::result::Result::Err(::serde::Error::msg(\
                             format!(\"expected string for {name}, found {{other:?}}\"))),\
                     }}\
                 }}"
            )
        }
    };
    format!("{header} {{ {body} }}")
}

/// Build `impl<...>` and `Name<...>` generic argument lists. Type params
/// get a `Serialize`/`Deserialize` bound; lifetimes pass through.
fn render_generics(params: &[String], mode: Mode) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let bound = match mode {
        Mode::Serialize => "::serde::Serialize",
        Mode::Deserialize => "::serde::Deserialize",
    };
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    for p in params {
        let ident = p
            .split([':', ' '])
            .find(|s| !s.is_empty())
            .unwrap_or(p)
            .to_string();
        if p.starts_with('\'') {
            impl_parts.push(p.clone());
            ty_parts.push(ident);
        } else if p.contains(':') {
            impl_parts.push(format!("{p} + {bound}"));
            ty_parts.push(ident);
        } else {
            impl_parts.push(format!("{p}: {bound}"));
            ty_parts.push(ident);
        }
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}
