//! Offline stand-in for `rand_chacha`. `ChaCha8Rng` here is a
//! xoshiro256** generator seeded via SplitMix64 — deterministic and
//! well-mixed, which is all the workspace's matrix generators need
//! (nothing depends on the actual ChaCha stream).

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = rand::SplitMix64::new(state);
        ChaCha8Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        let f: f64 = a.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
