//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives in
//! the parking_lot API shape: `Mutex::lock` returns the guard directly
//! (no `Result`), and `Condvar::wait` takes the guard by `&mut`.
//! Poisoning is ignored — a panicked rank thread must not cascade into
//! unrelated ranks waiting on the same mailbox (the simulator joins the
//! panicked thread and re-raises it deliberately).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wait with a timeout; returns `true` if the wait timed out. Spurious
    /// wakeups are possible, as with `wait`.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = 7;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        assert_eq!(*g, 7);
        drop(g);
        h.join().unwrap();
    }
}
