//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `Rng::gen`, `Rng::gen_range` over half-open and inclusive
//! ranges, `SeedableRng::seed_from_u64`, and `seq::SliceRandom::shuffle`.
//!
//! The statistical quality bar here is "good enough to generate test
//! matrices deterministically", not cryptographic; generators are simple
//! xorshift-family constructions seeded via SplitMix64.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding from a single `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with uniform sampling over a `lo..hi` span.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl UniformSample for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: used for seeding and as the default small generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

pub mod seq {
    //! Slice shuffling (Fisher–Yates), the only `rand::seq` item used.

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let k = a.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = a.gen_range(3usize..=9);
            assert!((3..=9).contains(&k));
            let v = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            b.gen::<f64>();
            b.gen_range(3usize..10);
            b.gen_range(3usize..=9);
            b.gen_range(-1.0..1.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SplitMix64::seed_from_u64(1));
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
