//! Umbrella crate for the SpTRSV-3D reproduction.
//!
//! Re-exports the workspace crates under one roof for the examples and
//! integration tests:
//!
//! * [`sparse`] — matrix formats, generators, dense kernels.
//! * [`ordering`] — nested dissection, elimination tree, symbolic analysis.
//! * [`lufactor`] — supernodal numeric LU + sequential reference solves.
//! * [`simgrid`] — virtual-time cluster simulator and machine models.
//! * [`sptrsv`] — the paper's 3D SpTRSV algorithms and driver.
//!
//! Quickstart:
//!
//! ```
//! use sptrsv_repro::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A test matrix (analog of the paper's s2D9pt2048) and its LU.
//! let a = sparse::gen::poisson2d_9pt(16, 16);
//! let fact = Arc::new(
//!     lufactor::factorize(&a, 4, &Default::default()).unwrap(),
//! );
//!
//! // 2. Solve on a simulated 2 × 2 × 4 grid with the proposed algorithm.
//! let b = sparse::gen::standard_rhs(a.nrows(), 1);
//! let cfg = SolverConfig {
//!     px: 2, py: 2, pz: 4, nrhs: 1,
//!     algorithm: Algorithm::New3d,
//!     arch: Arch::Cpu,
//!     machine: MachineModel::cori_haswell(),
//!     chaos_seed: 0,
//!     fault: Default::default(),
//!     backend: Default::default(),
//!     executor: Default::default(),
//! };
//! let out = solve_distributed(&fact, &b, &cfg);
//!
//! // 3. Verified against the sequential reference.
//! assert!(sparse::rel_residual_inf(&a, &out.x, &b, 1) < 1e-10);
//! println!("simulated solve time: {:.3} ms", out.makespan * 1e3);
//! ```

pub use lufactor;
pub use ordering;
pub use simgrid;
pub use sparse;
pub use sptrsv;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use lufactor::{factorize, Factorized};
    pub use ordering::SymbolicOptions;
    pub use simgrid::{Category, FaultPlan, MachineModel, Reorder};
    pub use sparse::{self, gen, CsrMatrix};
    pub use sptrsv::{
        critical_path, solve_distributed, solve_traced, span_profile, Algorithm, Arch, Backend,
        BatchPolicy, CriticalPath, ExecutorKind, MetricsServer, QueueFullPolicy, ServiceConfig,
        SolveOutcome, Solver3d, SolverConfig, SolverService, SpanProfile, SubmitError,
    };
}
