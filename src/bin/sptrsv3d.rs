//! `sptrsv3d` — command-line driver for the 3D SpTRSV reproduction.
//!
//! Solves `A x = b` for a Matrix Market file (e.g. a real SuiteSparse
//! matrix) or a named synthetic analog, on a simulated CPU/GPU cluster
//! (`--backend sim`, the default) or on real OS threads over the
//! shared-memory transport (`--backend native`), and prints the
//! paper-style timing breakdown.
//!
//! ```text
//! sptrsv3d --matrix path/to/matrix.mtx --px 4 --py 4 --pz 8 --machine cori
//! sptrsv3d --gen s2D9pt2048 --scale medium --pz 16 --arch gpu --machine perlmutter
//! ```

use simgrid::{export_perfetto, Category, FaultPlan, MachineModel, PROFILE_NAMES};
use sptrsv_repro::prelude::*;
use sptrsv_repro::sptrsv::{Plan, ZTrim};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    matrix: Option<String>,
    gen_name: Option<String>,
    scale: gen::Scale,
    px: usize,
    py: usize,
    pz: usize,
    nrhs: usize,
    z_layout: ZTrim,
    algorithm: Algorithm,
    arch: Arch,
    machine: MachineModel,
    backend: Backend,
    executor: ExecutorKind,
    symmetrize: bool,
    json: bool,
    fault_profile: Option<String>,
    chaos_seed: u64,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile_out: Option<String>,
    critical_path: bool,
    serve: bool,
    requests: usize,
    batch: usize,
    wait_us: u64,
    rate: f64,
    metrics_listen: Option<String>,
}

const USAGE: &str = "\
sptrsv3d — 3D communication-avoiding sparse triangular solve (simulated cluster)

USAGE:
    sptrsv3d [--matrix FILE.mtx | --gen NAME] [OPTIONS]

INPUT:
    --matrix FILE     Matrix Market file (coordinate real/integer/pattern,
                      general or symmetric); pattern is symmetrized if needed
    --gen NAME        synthetic Table 1 analog: s2D9pt2048 | nlpkkt80 | ldoor |
                      dielFilterV3real | Ga19As19H42 | s1_mat_0_253872
    --scale TIER      tiny | small | medium (for --gen; default small)

LAYOUT:
    --px N --py N     2D grid extents (default 2 x 2)
    --pz N            number of 2D grids, power of two (default 4)
    --nrhs N          right-hand sides (default 1)
    --z-layout L      inter-grid exchange pack layout (DESIGN.md §15):
                      live (default): compile-time live-support trimming,
                      empty rounds elided
                      dense: the untrimmed pre-trim layout (ablation)

EXECUTION:
    --alg A           new3d (default) | new3d-flat | new3d-naive-allreduce |
                      baseline3d
    --arch A          cpu (default) | gpu
    --machine M       cori (default) | perlmutter | perlmutter-cpu | crusher
    --backend B       sim (default): virtual-time simulator, predicted makespan
                      native: one OS thread per rank over shared memory,
                      measured wall-clock (excludes fault injection / tracing)
                      proc: one OS process per rank over Unix sockets with
                      wire-framed messages, measured wall-clock (same
                      exclusions as native)
    --executor E      tree (default): message-driven tree walk
                      level: precompiled level-set sweep with per-row barriers
                      (both are bit-identical; they differ only in timing)

FAULT INJECTION:
    --fault-profile P chaos profile: clean | jitter | duplicates | reorder |
                      straggler | degraded-link | all (default: none)
    --chaos-seed N    seed for the fault plan's deterministic sampling
                      (default 7 when --fault-profile is given)

SERVING (batched front door, DESIGN.md §13):
    --serve           run an open-loop load test against a SolverService
                      instead of one solve: width-1 requests are coalesced
                      into nrhs > 1 batches on the cached plan and demuxed
                      bit-identically; reports p50/p99 latency + solves/sec
    --requests N      number of open-loop requests (default 200)
    --batch B         max batch width (default 8; 1 = unbatched)
    --wait-us W       batch wait window in microseconds (default 200)
    --rate R          offered load in requests/sec (default: 4x the
                      calibrated unbatched service rate)
    --metrics-listen ADDR
                      expose the live metrics registry over HTTP in
                      OpenMetrics text while serving (e.g. 127.0.0.1:9464;
                      scrape with curl or Prometheus; port 0 picks a free
                      port and prints it)

OUTPUT:
    --json            machine-readable summary on stdout instead of the table
    --trace-out FILE  write a Chrome/Perfetto trace of the solve (load the
                      JSON in ui.perfetto.dev; one process per 2D grid, one
                      track per rank, flow arrows linking send -> recv);
                      under --serve this is the last batch's flight-recorder
                      dump, written after the drain
    --metrics-out F   write the solver metrics registry (counters and
                      histograms: message bytes, recv waits, fmod stalls);
                      under --serve, the final post-drain snapshot
    --profile-out F   write a span-aggregation profile: per-(pass, kind,
                      level) self time summing to the makespan; format by
                      extension (.json | .folded/.collapsed for flamegraphs |
                      table otherwise); under --serve, accumulated across
                      all batches
    --critical-path   trace the solve and report the measured critical path
                      (per-category composition and top blocking edges)
";

/// Render a span profile by output extension: `.json` machine-readable,
/// `.folded`/`.collapsed` flamegraph collapsed-stack, table otherwise.
fn render_profile(p: &SpanProfile, path: &str) -> String {
    if path.ends_with(".json") {
        p.to_json()
    } else if path.ends_with(".folded") || path.ends_with(".collapsed") {
        p.to_collapsed()
    } else {
        p.to_table(32)
    }
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        matrix: None,
        gen_name: None,
        scale: gen::Scale::Small,
        px: 2,
        py: 2,
        pz: 4,
        nrhs: 1,
        z_layout: ZTrim::Live,
        algorithm: Algorithm::New3d,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        backend: Backend::Sim,
        executor: ExecutorKind::Tree,
        symmetrize: false,
        json: false,
        fault_profile: None,
        chaos_seed: 7,
        trace_out: None,
        metrics_out: None,
        profile_out: None,
        critical_path: false,
        serve: false,
        requests: 200,
        batch: 8,
        wait_us: 200,
        rate: 0.0,
        metrics_listen: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i - 1)
            .cloned()
            .ok_or_else(|| "missing argument value".to_string())
    };
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        match flag.as_str() {
            "--matrix" => a.matrix = Some(next(&mut i)?),
            "--gen" => a.gen_name = Some(next(&mut i)?),
            "--scale" => {
                a.scale = match next(&mut i)?.as_str() {
                    "tiny" => gen::Scale::Tiny,
                    "small" => gen::Scale::Small,
                    "medium" => gen::Scale::Medium,
                    other => return Err(format!("unknown scale {other}")),
                }
            }
            "--px" => a.px = next(&mut i)?.parse().map_err(|e| format!("--px: {e}"))?,
            "--py" => a.py = next(&mut i)?.parse().map_err(|e| format!("--py: {e}"))?,
            "--pz" => a.pz = next(&mut i)?.parse().map_err(|e| format!("--pz: {e}"))?,
            "--nrhs" => a.nrhs = next(&mut i)?.parse().map_err(|e| format!("--nrhs: {e}"))?,
            "--z-layout" => a.z_layout = next(&mut i)?.parse()?,
            "--alg" => {
                a.algorithm = match next(&mut i)?.as_str() {
                    "new3d" => Algorithm::New3d,
                    "new3d-flat" => Algorithm::New3dFlat,
                    "new3d-naive-allreduce" => Algorithm::New3dNaiveAllreduce,
                    "baseline3d" => Algorithm::Baseline3d,
                    other => return Err(format!("unknown algorithm {other}")),
                }
            }
            "--arch" => {
                a.arch = match next(&mut i)?.as_str() {
                    "cpu" => Arch::Cpu,
                    "gpu" => Arch::Gpu,
                    other => return Err(format!("unknown arch {other}")),
                }
            }
            "--machine" => {
                a.machine = match next(&mut i)?.as_str() {
                    "cori" => MachineModel::cori_haswell(),
                    "perlmutter" => MachineModel::perlmutter_gpu(),
                    "perlmutter-cpu" => MachineModel::perlmutter_cpu(),
                    "crusher" => MachineModel::crusher_gpu(),
                    other => return Err(format!("unknown machine {other}")),
                }
            }
            "--backend" => a.backend = next(&mut i)?.parse()?,
            "--executor" => a.executor = next(&mut i)?.parse()?,
            "--fault-profile" => a.fault_profile = Some(next(&mut i)?),
            "--chaos-seed" => {
                a.chaos_seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?
            }
            "--serve" => a.serve = true,
            "--requests" => {
                a.requests = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--batch" => a.batch = next(&mut i)?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--wait-us" => {
                a.wait_us = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--wait-us: {e}"))?
            }
            "--rate" => a.rate = next(&mut i)?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--metrics-listen" => a.metrics_listen = Some(next(&mut i)?),
            "--symmetrize" => a.symmetrize = true,
            "--json" => a.json = true,
            "--trace-out" => a.trace_out = Some(next(&mut i)?),
            "--metrics-out" => a.metrics_out = Some(next(&mut i)?),
            "--profile-out" => a.profile_out = Some(next(&mut i)?),
            "--critical-path" => a.critical_path = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if a.matrix.is_none() && a.gen_name.is_none() {
        return Err("one of --matrix or --gen is required".into());
    }
    if !a.pz.is_power_of_two() {
        return Err("--pz must be a power of two".into());
    }
    if a.px == 0 || a.py == 0 {
        return Err("--px and --py must be at least 1".into());
    }
    if a.backend != Backend::Sim {
        if a.fault_profile.is_some() {
            return Err("--fault-profile is sim-only (fault injection needs the virtual clock); use --backend sim".into());
        }
        // Under --serve, --trace-out is the flight-recorder dump, which
        // every backend captures on the wall clock.
        if !a.serve && (a.trace_out.is_some() || a.critical_path) {
            return Err("--trace-out/--critical-path are sim-only (span tracing needs the virtual clock); use --backend sim".into());
        }
    }
    if a.serve {
        if a.fault_profile.is_some() || a.critical_path {
            return Err(
                "--serve runs many batched solves; drop --fault-profile/--critical-path".into(),
            );
        }
        if a.batch == 0 || a.requests == 0 {
            return Err("--batch and --requests must be at least 1".into());
        }
        if a.rate < 0.0 {
            return Err("--rate must be positive (or omitted to calibrate)".into());
        }
    } else if a.metrics_listen.is_some() {
        return Err("--metrics-listen exposes the serving registry; add --serve".into());
    }
    if let Some(p) = &a.fault_profile {
        let nranks = a.px * a.py * a.pz;
        if FaultPlan::from_profile(p, a.chaos_seed, nranks).is_none() {
            return Err(format!(
                "unknown fault profile {p} (expected one of: {})",
                PROFILE_NAMES.join(" | ")
            ));
        }
    }
    Ok(a)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let a = if let Some(path) = &args.matrix {
        match sparse::io::read_matrix_market_file(std::path::Path::new(path)) {
            Ok(m) => {
                if args.symmetrize || !m.pattern_is_symmetric() {
                    eprintln!("note: symmetrizing the sparsity pattern");
                    m.symmetrized_pattern()
                } else {
                    m
                }
            }
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let name = args.gen_name.as_deref().unwrap();
        match gen::by_name(name, args.scale) {
            Some(m) => m,
            None => {
                eprintln!("error: unknown generator matrix {name}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Progress goes to stderr under --json so stdout stays parseable.
    let progress = |line: String| {
        if args.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    progress(format!("matrix: n = {}, nnz = {}", a.nrows(), a.nnz()));

    let t0 = std::time::Instant::now();
    let fact = match factorize(&a, args.pz, &SymbolicOptions::default()) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("error: factorization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sym = fact.lu.sym();
    progress(format!(
        "factorized in {:.2}s: {} supernodes, nnz(LU) = {} ({:.4}% dense)",
        t0.elapsed().as_secs_f64(),
        sym.n_supernodes(),
        sym.nnz_lu(),
        100.0 * sym.nnz_lu() as f64 / (a.nrows() as f64 * a.nrows() as f64)
    ));

    let b = gen::standard_rhs(a.nrows(), args.nrhs);
    let fault = match &args.fault_profile {
        Some(p) => {
            let nranks = args.px * args.py * args.pz;
            let plan = FaultPlan::from_profile(p, args.chaos_seed, nranks)
                .expect("profile validated in parse_args");
            eprintln!("fault profile {p} (seed {}): {plan:?}", args.chaos_seed);
            plan
        }
        None => FaultPlan::default(),
    };
    let cfg = SolverConfig {
        px: args.px,
        py: args.py,
        pz: args.pz,
        nrhs: args.nrhs,
        algorithm: args.algorithm,
        arch: args.arch,
        machine: args.machine.clone(),
        chaos_seed: 0,
        fault,
        backend: args.backend,
        executor: args.executor,
    };
    if args.serve {
        use benchkit::serving::{calibrate_single_solve, run_open_loop_on, ServeRun};
        let n = a.nrows();
        let rhs = gen::standard_rhs(n, 8);
        let t_solve =
            calibrate_single_solve(&Solver3d::new(Arc::clone(&fact), cfg.clone()), &rhs, n);
        let rate_hz = if args.rate > 0.0 {
            args.rate
        } else {
            4.0 / t_solve.as_secs_f64()
        };
        progress(format!(
            "single solve: {:.1} µs ({:.0} solves/s unbatched); offering {rate_hz:.0} req/s",
            t_solve.as_secs_f64() * 1e6,
            1.0 / t_solve.as_secs_f64()
        ));
        let run = ServeRun {
            requests: args.requests,
            rate_hz,
            max_batch: args.batch,
            max_wait: std::time::Duration::from_micros(args.wait_us),
        };
        // Own the service here (instead of inside run_open_loop) so the
        // metrics endpoint stays scrapeable during the load and the final
        // snapshots are taken after the drain, before shutdown.
        let svc = SolverService::start(
            Solver3d::new(fact, cfg),
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: run.max_batch,
                    max_wait: run.max_wait,
                },
                queue_capacity: 64,
                max_request_width: 1,
                on_full: QueueFullPolicy::Block,
            },
        );
        let listener = match &args.metrics_listen {
            Some(addr) => match svc.serve_metrics(addr) {
                Ok(srv) => {
                    eprintln!(
                        "metrics: http://{}/metrics (OpenMetrics text)",
                        srv.local_addr()
                    );
                    Some(srv)
                }
                Err(e) => {
                    eprintln!("error: cannot bind metrics listener on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let report = run_open_loop_on(&svc, &rhs, n, &run);
        // Final observability snapshots: everything submitted has been
        // collected, so these reflect the fully drained service.
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, svc.metrics().to_json()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote final metrics snapshot to {path}");
        }
        if let Some(path) = &args.trace_out {
            if let Err(e) = std::fs::write(path, svc.dump_flight_recorder()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote flight-recorder dump to {path} (open in ui.perfetto.dev)");
        }
        if let Some(path) = &args.profile_out {
            if let Err(e) = std::fs::write(path, render_profile(&svc.span_profile(), path)) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote span profile to {path}");
        }
        if let Some(srv) = listener {
            srv.shutdown();
        }
        svc.shutdown();
        if args.json {
            #[derive(serde::Serialize)]
            struct ServeSummary<'a> {
                n: usize,
                ranks: usize,
                backend: &'a str,
                requests: usize,
                rate_hz: f64,
                max_batch: usize,
                wait_us: u64,
                completed: usize,
                batches: u64,
                mean_batch_width: f64,
                p50_latency_us: f64,
                p99_latency_us: f64,
                solves_per_sec: f64,
            }
            let summary = ServeSummary {
                n,
                ranks: args.px * args.py * args.pz,
                backend: match args.backend {
                    Backend::Sim => "sim",
                    Backend::Native => "native",
                    Backend::Proc => "proc",
                },
                requests: args.requests,
                rate_hz,
                max_batch: args.batch,
                wait_us: args.wait_us,
                completed: report.completed,
                batches: report.batches,
                mean_batch_width: report.mean_batch_width,
                p50_latency_us: report.p50_latency_us,
                p99_latency_us: report.p99_latency_us,
                solves_per_sec: report.solves_per_sec,
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&summary).expect("serializable summary")
            );
        } else {
            println!(
                "\nserving on {} ({} ranks, {:?}, backend {:?}):",
                format_args!("{}x{}x{}", args.px, args.py, args.pz),
                args.px * args.py * args.pz,
                args.algorithm,
                args.backend
            );
            println!(
                "  offered load   : {rate_hz:>12.0} req/s ({} requests)",
                args.requests
            );
            println!(
                "  batch policy   : B = {}, W = {} µs",
                args.batch, args.wait_us
            );
            println!(
                "  batches        : {:>12} (mean width {:.1})",
                report.batches, report.mean_batch_width
            );
            println!("  p50 latency    : {:>12.1} µs", report.p50_latency_us);
            println!("  p99 latency    : {:>12.1} µs", report.p99_latency_us);
            println!(
                "  throughput     : {:>12.0} solves/s",
                report.solves_per_sec
            );
        }
        return if report.completed == args.requests {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: {} of {} requests completed",
                report.completed, args.requests
            );
            ExitCode::FAILURE
        };
    }

    // A profile prefers full traces (exact tiling to the makespan); under
    // the native backend it falls back to the bounded flight recorder.
    let want_trace = args.trace_out.is_some()
        || args.critical_path
        || (args.profile_out.is_some() && args.backend == Backend::Sim);
    let plan = Arc::new(Plan::with_trim(
        Arc::clone(&fact),
        args.px,
        args.py,
        args.pz,
        args.z_layout,
    ));
    let out = solve_traced(&plan, &b, &cfg, want_trace);
    let res = sparse::rel_residual_inf(&a, &out.x, &b, args.nrhs);

    if let Some(path) = &args.trace_out {
        let json = export_perfetto(&out.traces, args.px * args.py);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote Perfetto trace to {path} (open in ui.perfetto.dev)");
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, out.metrics.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &args.profile_out {
        let timelines = if out.traces.is_empty() {
            &out.flight
        } else {
            &out.traces
        };
        let prof = span_profile(timelines, out.makespan);
        if let Err(e) = std::fs::write(path, render_profile(&prof, path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote span profile to {path}");
    }
    let cp = want_trace.then(|| out.critical_path());

    if args.json {
        #[derive(serde::Serialize)]
        struct CriticalPathSummary {
            length_seconds: f64,
            flop_seconds: f64,
            xy_comm_seconds: f64,
            z_comm_seconds: f64,
            wire_seconds: f64,
            idle_seconds: f64,
            spans: usize,
            blocking_edges: usize,
        }
        #[derive(serde::Serialize)]
        struct Summary<'a> {
            n: usize,
            nnz_lu: usize,
            supernodes: usize,
            ranks: usize,
            machine: &'a str,
            backend: &'a str,
            /// Makespan on the backend clock: simulated seconds under
            /// `sim`, measured wall-clock seconds under `native`.
            simulated_seconds: f64,
            l_solve_mean: f64,
            u_solve_mean: f64,
            z_comm_mean: f64,
            residual: f64,
            critical_path: Option<CriticalPathSummary>,
            phases: &'a [sptrsv::PhaseTimes],
        }
        let summary = Summary {
            n: a.nrows(),
            nnz_lu: sym.nnz_lu(),
            supernodes: sym.n_supernodes(),
            ranks: args.px * args.py * args.pz,
            machine: args.machine.name,
            backend: match args.backend {
                Backend::Sim => "sim",
                Backend::Native => "native",
                Backend::Proc => "proc",
            },
            simulated_seconds: out.makespan,
            l_solve_mean: out.mean(|p| p.l_wall),
            u_solve_mean: out.mean(|p| p.u_wall),
            z_comm_mean: out.mean(|p| p.z_time),
            residual: res,
            critical_path: cp.as_ref().map(|c| CriticalPathSummary {
                length_seconds: c.length,
                flop_seconds: c.by_category[Category::Flop as usize],
                xy_comm_seconds: c.by_category[Category::XyComm as usize],
                z_comm_seconds: c.by_category[Category::ZComm as usize],
                wire_seconds: c.wire_time,
                idle_seconds: c.idle,
                spans: c.spans,
                blocking_edges: c.edges.len(),
            }),
            phases: &out.phases,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serializable summary")
        );
        return if res > 1e-8 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    println!(
        "\nsolve on {} ({} ranks, {:?} {:?}, machine {}):",
        format_args!("{}x{}x{}", args.px, args.py, args.pz),
        args.px * args.py * args.pz,
        args.algorithm,
        args.arch,
        args.machine.name
    );
    let clock_label = match args.backend {
        Backend::Sim => "simulated time ",
        Backend::Native | Backend::Proc => "wall-clock time",
    };
    println!("  {clock_label}: {:>12.3} µs", out.makespan * 1e6);
    println!(
        "  L-solve (mean) : {:>12.3} µs",
        out.mean(|p| p.l_wall) * 1e6
    );
    println!(
        "  U-solve (mean) : {:>12.3} µs",
        out.mean(|p| p.u_wall) * 1e6
    );
    println!(
        "  Z-comm  (mean) : {:>12.3} µs",
        out.mean(|p| p.z_time) * 1e6
    );
    let msgs: u64 = out
        .stats
        .iter()
        .map(|s| s.msgs_sent.iter().sum::<u64>())
        .sum();
    let bytes: u64 = out
        .stats
        .iter()
        .map(|s| s.bytes_sent[Category::XyComm as usize] + s.bytes_sent[Category::ZComm as usize])
        .sum();
    println!("  messages       : {msgs}");
    println!(
        "  comm volume    : {:.3} MiB",
        bytes as f64 / (1 << 20) as f64
    );
    println!("  residual       : {res:.3e}");
    if args.critical_path {
        if let Some(cp) = &cp {
            print!("\n{}", cp.report(5));
        }
    }
    if res > 1e-8 {
        eprintln!("error: residual too large — solve failed verification");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
