#!/usr/bin/env python3
"""Throughput-regression gate over the BENCH_*.json artifacts.

Compares the freshly generated bench reports in the working tree against
the committed baselines (``git show HEAD:<file>``) and fails when any
throughput-style metric regressed by more than the threshold (15% by
default — wall-clock benches on shared CI runners are noisy, and the
reports' own internal acceptance gates catch the rest).

A file with no committed baseline, or a baseline whose schema lacks the
metric, passes: the gate only ever compares like with like.

Usage:
    scripts/bench_compare.py [--threshold 0.15] [FILE...]

With no FILE arguments, every ``BENCH_*.json`` present in the working
tree is checked.
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def _peak_serving(report):
    """BENCH_pr7: peak solves/sec over every (backend, executor, config,
    load) scenario of the open-loop serving sweep."""
    rates = [s["solves_per_sec"] for s in report.get("scenarios", []) if "solves_per_sec" in s]
    return {"peak_solves_per_sec": max(rates)} if rates else {}


def _kernels_and_hot_solve(report):
    """BENCH_pr4: per-kernel blocked throughput (1/ns) and the hot-solve
    rate (solves/sec from the measured per-solve milliseconds)."""
    out = {}
    for k in report.get("kernels", []):
        if k.get("blocked_ns", 0) > 0:
            out[f"kernel_{k['kernel']}_nrhs{k['nrhs']}_per_ns"] = 1.0 / k["blocked_ns"]
    hot = report.get("hot_solve", {})
    if hot.get("measured_ms", 0) > 0:
        out["hot_solves_per_sec"] = 1e3 / hot["measured_ms"]
    return out


def _exchange_trim(report):
    """BENCH_pr9: per-scenario bytes-on-wire savings ratio of the
    live-trimmed exchange layout (dense/live bytes, higher = more cut)
    and the deep-dive exchange speedup (dense/live makespan). Both are
    deterministic simulator quantities, so the threshold guards against
    schedule regressions, not runner noise."""
    out = {}
    for s in report.get("scenarios", []):
        if s.get("z_bytes_live", 0) > 0:
            key = f"ztrim_{s['matrix']}_pz{s['pz']}_bytes_ratio"
            out[key] = s["z_bytes_dense"] / s["z_bytes_live"]
    for s in report.get("deep_1x1xpz", []):
        if s.get("makespan_live", 0) > 0:
            key = f"ztrim_deep_{s['matrix']}_pz{s['pz']}_exchange_speedup"
            out[key] = s["makespan_dense"] / s["makespan_live"]
    return out


def _native_wall(report):
    """BENCH_pr5: best native wall-clock solve rate per algorithm."""
    out = {}
    for b in report.get("backends", []):
        if b.get("native_wall_us_min", 0) > 0:
            out[f"native_{b['algorithm']}_solves_per_sec"] = 1e6 / b["native_wall_us_min"]
    return out


# File basename -> extractor returning {metric: higher_is_better_value}.
EXTRACTORS = {
    "BENCH_pr4.json": _kernels_and_hot_solve,
    "BENCH_pr5.json": _native_wall,
    "BENCH_pr7.json": _peak_serving,
    "BENCH_pr9.json": _exchange_trim,
}


def baseline_of(path):
    """The committed (HEAD) copy of ``path``, or None if it has none."""
    rel = os.path.relpath(path)
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{rel}"],
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def compare(path, threshold):
    """Yield (metric, base, new, regression, failed) rows for one file."""
    extractor = EXTRACTORS.get(os.path.basename(path))
    if extractor is None:
        return
    with open(path) as f:
        current = extractor(json.load(f))
    baseline_report = baseline_of(path)
    if baseline_report is None:
        print(f"{path}: no committed baseline — skipping")
        return
    baseline = extractor(baseline_report)
    for metric, new in sorted(current.items()):
        base = baseline.get(metric)
        if base is None or base <= 0:
            continue
        regression = (base - new) / base
        yield metric, base, new, regression, regression > threshold


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="bench reports (default: BENCH_*.json)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated fractional throughput drop (default 0.15)",
    )
    args = ap.parse_args()

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("bench_compare: no BENCH_*.json files found — nothing to do")
        return 0

    failures = 0
    for path in files:
        if not os.path.exists(path):
            print(f"{path}: missing — skipping")
            continue
        for metric, base, new, regression, failed in compare(path, args.threshold):
            verdict = "FAIL" if failed else "ok"
            print(
                f"{path}: {metric}: {base:.4g} -> {new:.4g} "
                f"({-regression:+.1%}) {verdict}"
            )
            failures += failed
    if failures:
        print(
            f"bench_compare: {failures} metric(s) regressed more than "
            f"{args.threshold:.0%} against HEAD"
        )
        return 1
    print("bench_compare: no throughput regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
